// Streaming analytics (DESIGN.md §15): sketch error bounds, change-point
// detection, and the determinism contract.
//
// The error-bound tests are the checkable half of the sketch bargain:
// HyperLogLog client/address cardinalities must land within ±2% of the
// exact ServiceTable tallies over randomized campaigns, and count-min
// flow estimates within the classic eps*N envelope (and never under).
// The determinism tests pin the contract DESIGN.md promises: streaming
// artifacts are byte-identical at every --threads count, and a disabled
// streaming layer leaves the simulation (rng stream, event count,
// tables) untouched.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/streaming.h"
#include "core/campaign_runner.h"
#include "core/engine.h"
#include "net/ipv4.h"
#include "net/packet.h"
#include "passive/monitor.h"
#include "passive/service_table.h"
#include "util/flat_hash.h"
#include "util/sketch.h"
#include "workload/campus.h"

namespace svcdisc {
namespace {

using analysis::ChangePoint;
using analysis::StreamingAnalytics;
using analysis::StreamingConfig;
using net::Ipv4;
using net::Packet;
using net::Prefix;
using passive::ServiceKey;
using util::CountMinSketch;
using util::HyperLogLog;
using util::hash_mix;
using util::hours;
using util::kEpoch;
using util::minutes;

const Ipv4 kServer = Ipv4::from_octets(128, 125, 1, 1);
const Prefix kCampus(Ipv4::from_octets(128, 125, 0, 0), 16);

// ------------------------------------------------------------ sketches --

TEST(HyperLogLog, DisabledByDefault) {
  HyperLogLog hll;
  EXPECT_FALSE(hll.enabled());
  hll.add(123);  // must not crash
  EXPECT_EQ(hll.count(), 0u);
  EXPECT_EQ(hll.memory_bytes(), 0u);
}

TEST(HyperLogLog, SmallCardinalitiesNearExact) {
  // Linear-counting regime: up to a few hundred distinct items, a p=12
  // sketch is essentially exact.
  for (const std::uint64_t n : {1u, 10u, 100u, 500u}) {
    HyperLogLog hll;
    hll.init(12);
    for (std::uint64_t i = 0; i < n; ++i) hll.add(hash_mix(i * 7919 + 1));
    const double est = static_cast<double>(hll.count());
    const double exact = static_cast<double>(n);
    EXPECT_NEAR(est, exact, std::max(1.0, exact * 0.02)) << "n=" << n;
  }
}

TEST(HyperLogLog, LargeCardinalityWithinTwoPercent) {
  // p=12 gives sigma ~1.04/sqrt(4096) = 1.6%; the fixed input stream
  // makes the estimate deterministic, so this is a regression pin, not a
  // flaky probabilistic assertion.
  HyperLogLog hll;
  hll.init(12);
  constexpr std::uint64_t kN = 200000;
  for (std::uint64_t i = 0; i < kN; ++i) hll.add(hash_mix(i * 17 + 17));
  const double est = static_cast<double>(hll.count());
  EXPECT_NEAR(est, static_cast<double>(kN), kN * 0.02);
}

TEST(HyperLogLog, DuplicatesDoNotInflate) {
  HyperLogLog hll;
  hll.init(12);
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t i = 0; i < 64; ++i) hll.add(hash_mix(i));
  }
  EXPECT_NEAR(static_cast<double>(hll.count()), 64.0, 3.0);
}

TEST(HyperLogLog, MergeMatchesUnionAndCommutes) {
  HyperLogLog a, b, whole;
  a.init(12);
  b.init(12);
  whole.init(12);
  for (std::uint64_t i = 0; i < 3000; ++i) {
    const std::uint64_t h = hash_mix(i);
    whole.add(h);
    (i % 2 == 0 ? a : b).add(h);
  }
  HyperLogLog ab = a;
  ab.merge(b);
  HyperLogLog ba = b;
  ba.merge(a);
  // Register-max merge: both orders land on identical registers, which
  // must equal the single-sketch union.
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_EQ(ab.count(), whole.count());
}

TEST(CountMinSketch, NeverUnderestimatesAndRespectsEpsN) {
  CountMinSketch cms;
  cms.init(4096, 4);
  util::FlatMap<std::uint64_t, std::uint64_t> exact;
  // Zipf-ish workload: key i gets ~1000/(i+1) increments.
  for (std::uint64_t i = 0; i < 500; ++i) {
    const std::uint64_t n = 1000 / (i + 1) + 1;
    const std::uint64_t h = hash_mix(i + 17);
    for (std::uint64_t k = 0; k < n; ++k) cms.add(h);
    exact[h] += n;
  }
  const double eps_n =
      2.72 * static_cast<double>(cms.total()) / 4096.0;  // e/width * N
  for (const auto& [h, n] : exact) {
    const std::uint64_t est = cms.estimate(h);
    EXPECT_GE(est, n);
    EXPECT_LE(static_cast<double>(est - n), eps_n);
  }
  EXPECT_EQ(cms.estimate(hash_mix(99991)), 0u)
      << "an unseen key may only collide within eps*N";
}

TEST(CountMinSketch, MergeIsAdditive) {
  CountMinSketch a, b;
  a.init(1024, 4);
  b.init(1024, 4);
  const std::uint64_t h = hash_mix(42);
  for (int i = 0; i < 10; ++i) a.add(h);
  for (int i = 0; i < 5; ++i) b.add(h);
  a.merge(b);
  EXPECT_GE(a.estimate(h), 15u);
  EXPECT_EQ(a.total(), 15u);
}

TEST(DecayRate, HalvesPerHalfLife) {
  util::DecayRate rate(hours(2));
  rate.observe(kEpoch, 8.0);
  EXPECT_DOUBLE_EQ(rate.mass(kEpoch), 8.0);
  EXPECT_NEAR(rate.mass(kEpoch + hours(2)), 4.0, 1e-9);
  EXPECT_NEAR(rate.mass(kEpoch + hours(4)), 2.0, 1e-9);
}

// --------------------------------------------- sketch-backed ServiceTable --

TEST(SketchTable, ClientCountTracksExactWithinTwoPercent) {
  // The same flow stream through an exact and a sketch-accounted table:
  // per-service client estimates must stay within max(1, 2%) of truth.
  passive::ServiceTable exact;
  passive::ServiceTable sketch(passive::ClientAccounting::kSketch);
  const ServiceKey key{kServer, net::Proto::kTcp, 80};
  constexpr std::uint64_t kClients = 150;
  for (std::uint64_t i = 0; i < kClients; ++i) {
    const Ipv4 client(static_cast<std::uint32_t>(0x42000000u + i * 131));
    // Every client contacts twice: duplicates must not inflate.
    for (int k = 0; k < 2; ++k) {
      exact.count_flow(key, client, kEpoch + minutes(i));
      sketch.count_flow(key, client, kEpoch + minutes(i));
    }
  }
  exact.discover(key, kEpoch);
  sketch.discover(key, kEpoch);
  const auto* e = exact.find(key);
  const auto* s = sketch.find(key);
  ASSERT_NE(e, nullptr);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(e->client_count(), kClients);
  EXPECT_TRUE(s->clients.empty()) << "sketch mode must not keep client maps";
  EXPECT_NEAR(static_cast<double>(s->client_count()),
              static_cast<double>(kClients),
              std::max(1.0, kClients * 0.02));
  EXPECT_EQ(s->flows, e->flows);
}

TEST(SketchTable, AbsorbMergesClientSketches) {
  // Shard-merge path: two sketch tables over disjoint client halves must
  // absorb into the union estimate (register-max merge).
  const ServiceKey key{kServer, net::Proto::kTcp, 80};
  passive::ServiceTable a(passive::ClientAccounting::kSketch);
  passive::ServiceTable b(passive::ClientAccounting::kSketch);
  passive::ServiceTable whole(passive::ClientAccounting::kSketch);
  constexpr std::uint64_t kClients = 120;
  for (std::uint64_t i = 0; i < kClients; ++i) {
    const Ipv4 client(static_cast<std::uint32_t>(0x42000000u + i * 977));
    (i % 2 == 0 ? a : b).count_flow(key, client, kEpoch + minutes(i));
    whole.count_flow(key, client, kEpoch + minutes(i));
  }
  a.discover(key, kEpoch);
  b.discover(key, kEpoch);
  whole.discover(key, kEpoch);
  a.absorb(std::move(b));
  const auto* merged = a.find(key);
  const auto* single = whole.find(key);
  ASSERT_NE(merged, nullptr);
  ASSERT_NE(single, nullptr);
  EXPECT_EQ(merged->client_count(), single->client_count());
  EXPECT_EQ(merged->flows, kClients);
}

TEST(SketchTable, MemoryIsBoundedPerService) {
  // O(services): table bytes must not grow with the client count.
  const ServiceKey key{kServer, net::Proto::kTcp, 80};
  passive::ServiceTable sketch(passive::ClientAccounting::kSketch);
  sketch.count_flow(key, Ipv4::from_octets(66, 0, 0, 1), kEpoch);
  const std::size_t after_one = sketch.memory_bytes();
  for (std::uint64_t i = 0; i < 50000; ++i) {
    sketch.count_flow(key, Ipv4(static_cast<std::uint32_t>(0x50000000u + i)),
                      kEpoch + minutes(1));
  }
  EXPECT_EQ(sketch.memory_bytes(), after_one)
      << "50k extra clients must not add a byte in sketch mode";
}

// ------------------------------------------------ streaming unit tests --

StreamingConfig unit_config() {
  StreamingConfig cfg;
  cfg.internal_prefixes = {kCampus};
  cfg.window = hours(1);
  cfg.burst_floor = 50;
  return cfg;
}

Packet syn(Ipv4 src, Ipv4 dst, net::Port dport, util::TimePoint t) {
  Packet p = net::make_tcp(src, 40000, dst, dport, net::flags_syn());
  p.time = t;
  return p;
}

Packet syn_ack(Ipv4 src, net::Port sport, Ipv4 dst, util::TimePoint t) {
  Packet p = net::make_tcp(src, sport, dst, 40000, net::flags_syn_ack());
  p.time = t;
  return p;
}

TEST(Streaming, DetectsInjectedScanBurst) {
  StreamingAnalytics stream(unit_config());
  const Ipv4 scanner = Ipv4::from_octets(7, 7, 7, 7);
  // Five calm windows (~8 inbound SYNs each) seed the EWMA baseline,
  // then one hot window sprays 400 SYNs across the campus.
  for (int w = 0; w < 5; ++w) {
    for (int i = 0; i < 8; ++i) {
      const Ipv4 client = Ipv4::from_octets(66, 0, w, i);
      stream.observe(syn(client, kServer, 80,
                         kEpoch + hours(w) + minutes(i)));
    }
  }
  for (int i = 0; i < 400; ++i) {
    const Ipv4 target(static_cast<std::uint32_t>(kServer.value() + i));
    stream.observe(
        syn(scanner, target, 80, kEpoch + hours(5) + minutes(i % 50)));
  }
  stream.finish(kEpoch + hours(7));
  ASSERT_GE(stream.burst_count(), 1u);
  bool found = false;
  for (const ChangePoint& e : stream.change_points()) {
    if (e.kind == ChangePoint::Kind::kScanBurst) {
      found = true;
      EXPECT_GE(e.observed, 400u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Streaming, QuietTrafficRaisesNoBurst) {
  StreamingAnalytics stream(unit_config());
  for (int w = 0; w < 10; ++w) {
    for (int i = 0; i < 8; ++i) {
      stream.observe(syn(Ipv4::from_octets(66, 1, w, i), kServer, 80,
                         kEpoch + hours(w) + minutes(i)));
    }
  }
  stream.finish(kEpoch + hours(11));
  EXPECT_EQ(stream.burst_count(), 0u);
}

TEST(Streaming, ServiceDeathAndReturnTimeline) {
  auto cfg = unit_config();
  cfg.death_min_activity = 6;
  cfg.death_windows = 6;
  StreamingAnalytics stream(cfg);
  const Ipv4 client = Ipv4::from_octets(66, 2, 3, 4);
  // Hour 0-5: lively service (6 SYN-ACK sightings), then 12h of silence
  // (kept observable by unrelated background SYNs), then it answers
  // again.
  for (int i = 0; i < 6; ++i) {
    stream.observe(syn_ack(kServer, 80, client, kEpoch + hours(i)));
  }
  const Ipv4 other = Ipv4::from_octets(128, 125, 9, 9);
  for (int i = 6; i < 20; ++i) {
    stream.observe(syn(client, other, 443, kEpoch + hours(i)));
  }
  stream.observe(syn_ack(kServer, 80, client, kEpoch + hours(20)));
  stream.finish(kEpoch + hours(21));

  const ServiceKey key{kServer, net::Proto::kTcp, 80};
  std::vector<ChangePoint::Kind> kinds;
  for (const ChangePoint& e : stream.change_points()) {
    if (e.key.addr == key.addr && e.key.port == key.port) {
      kinds.push_back(e.kind);
    }
  }
  ASSERT_EQ(kinds.size(), 3u);
  EXPECT_EQ(kinds[0], ChangePoint::Kind::kServiceAppeared);
  EXPECT_EQ(kinds[1], ChangePoint::Kind::kServiceDied);
  EXPECT_EQ(kinds[2], ChangePoint::Kind::kServiceReturned);

  const util::Calendar calendar(0);
  const auto lines = stream.explain_lines(key, calendar);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("stream/service_appeared"), std::string::npos);
  EXPECT_NE(lines[1].find("stream/service_died"), std::string::npos);
  EXPECT_NE(lines[2].find("stream/service_returned"), std::string::npos);
}

TEST(Streaming, MultiDayCampaignClosesOneWindowPerDay) {
  // 90 simulated days under daily windows: every window closes exactly
  // once, on the epoch-anchored day grid, with no drift across the long
  // horizon.
  auto cfg = unit_config();
  cfg.window = util::days(1);
  StreamingAnalytics stream(cfg);
  const Ipv4 client = Ipv4::from_octets(66, 9, 1, 1);
  for (int day = 0; day < 90; ++day) {
    stream.observe(syn_ack(kServer, 80, client,
                           kEpoch + util::days(day) + hours(12)));
  }
  stream.finish(kEpoch + util::days(90));
  ASSERT_EQ(stream.snapshots().size(), 90u);
  for (int day = 0; day < 90; ++day) {
    EXPECT_EQ(stream.snapshots()[static_cast<std::size_t>(day)].at,
              kEpoch + util::days(day + 1));
  }
  EXPECT_EQ(stream.burst_count(), 0u);
}

TEST(Streaming, DeathAndReturnAcrossADailyWindowHorizon) {
  // The death/return state machine at day granularity: six sightings in
  // week one, then 50+ days of silence (windows kept rolling by
  // unrelated background traffic), then a one-day comeback on day 60 —
  // after which the 30 silent days to the horizon kill it again.
  auto cfg = unit_config();
  cfg.window = util::days(1);
  StreamingAnalytics stream(cfg);
  const Ipv4 client = Ipv4::from_octets(66, 9, 2, 2);
  for (int day = 0; day < 6; ++day) {
    stream.observe(syn_ack(kServer, 80, client, kEpoch + util::days(day)));
  }
  const Ipv4 other = Ipv4::from_octets(128, 125, 9, 9);
  for (int day = 6; day < 60; ++day) {
    stream.observe(syn(client, other, 443, kEpoch + util::days(day)));
  }
  stream.observe(syn_ack(kServer, 80, client, kEpoch + util::days(60)));
  stream.finish(kEpoch + util::days(90));

  std::vector<ChangePoint::Kind> kinds;
  for (const ChangePoint& e : stream.change_points()) {
    if (e.key.addr == kServer && e.key.port == 80) kinds.push_back(e.kind);
  }
  ASSERT_EQ(kinds.size(), 4u);
  EXPECT_EQ(kinds[0], ChangePoint::Kind::kServiceAppeared);
  EXPECT_EQ(kinds[1], ChangePoint::Kind::kServiceDied);
  EXPECT_EQ(kinds[2], ChangePoint::Kind::kServiceReturned);
  EXPECT_EQ(kinds[3], ChangePoint::Kind::kServiceDied);
}

TEST(Streaming, NinetyDayGapRollsEveryHourlyWindowWithoutDrift) {
  // One observation after an 89-day silence forces the window clock to
  // catch up through ~2,100 empty hourly windows in a single roll; every
  // one must close (the snapshot log has no holes) and land exactly on
  // the hour grid.
  StreamingAnalytics stream(unit_config());
  const Ipv4 client = Ipv4::from_octets(66, 9, 3, 3);
  stream.observe(syn(client, kServer, 80, kEpoch + minutes(30)));
  stream.observe(syn(client, kServer, 80, kEpoch + util::days(89)));
  stream.finish(kEpoch + util::days(90));
  ASSERT_EQ(stream.snapshots().size(), 90u * 24u);
  EXPECT_EQ(stream.snapshots().back().at, kEpoch + util::days(90));
  EXPECT_EQ(stream.burst_count(), 0u);
}

TEST(Streaming, NonPositiveWindowClampsToDefaultInsteadOfSpinning) {
  // Regression: a zero (or negative) window advanced the epoch anchor by
  // nothing in roll_windows() — an infinite loop on the first packet.
  // The constructor now clamps to the hourly default.
  auto cfg = unit_config();
  cfg.window = util::usec(0);
  StreamingAnalytics stream(cfg);
  const Ipv4 client = Ipv4::from_octets(66, 9, 4, 4);
  stream.observe(syn(client, kServer, 80, kEpoch + minutes(90)));
  stream.finish(kEpoch + hours(3));
  EXPECT_EQ(stream.snapshots().size(), 3u);

  auto negative = unit_config();
  negative.window = util::usec(-5);
  StreamingAnalytics neg(negative);
  neg.observe(syn(client, kServer, 80, kEpoch + minutes(30)));
  neg.finish(kEpoch + hours(1));
  EXPECT_EQ(neg.snapshots().size(), 1u);
}

TEST(Streaming, CmsFlowEstimateWithinEpsN) {
  StreamingAnalytics stream(unit_config());
  // 40 services on distinct campus addresses with skewed flow counts.
  for (int svc = 0; svc < 40; ++svc) {
    const Ipv4 server = Ipv4::from_octets(128, 125, 2, svc + 1);
    const int flows = 200 / (svc + 1) + 1;
    for (int i = 0; i < flows; ++i) {
      stream.observe(syn(Ipv4::from_octets(66, 3, svc, i % 250), server, 80,
                         kEpoch + minutes(svc * 13 + i)));
    }
  }
  stream.finish(kEpoch + hours(2));
  const double eps_n =
      2.72 * static_cast<double>(stream.flows_seen()) / 4096.0;
  for (int svc = 0; svc < 40; ++svc) {
    const ServiceKey key{Ipv4::from_octets(128, 125, 2, svc + 1),
                         net::Proto::kTcp, 80};
    const std::uint64_t exact = stream.flow_exact(key);
    const std::uint64_t est = stream.flow_estimate(key);
    ASSERT_GT(exact, 0u);
    EXPECT_GE(est, exact);
    EXPECT_LE(static_cast<double>(est - exact), eps_n);
  }
}

// --------------------------------------------- campaign property tests --

workload::CampusConfig fast_tiny(std::uint64_t seed) {
  auto cfg = workload::CampusConfig::tiny();
  cfg.duration = util::days(1);
  cfg.seed = seed;
  return cfg;
}

struct CampaignArtifacts {
  std::string streaming_jsonl;
  std::uint64_t events_processed{0};
  std::vector<std::pair<ServiceKey, std::uint64_t>> client_counts;
};

CampaignArtifacts run_campaign(std::uint64_t seed, std::size_t threads,
                               bool streaming) {
  workload::Campus campus(fast_tiny(seed));
  util::MetricsRegistry metrics;
  core::EngineConfig cfg;
  cfg.scan_count = 2;
  cfg.threads = threads;
  cfg.metrics = &metrics;
  StreamingAnalytics stream(core::streaming_config_for(campus));
  if (streaming) {
    cfg.streaming = &stream;
    cfg.sketch_tables = true;
  }
  core::DiscoveryEngine engine(campus, cfg);
  engine.run();
  CampaignArtifacts out;
  if (streaming) {
    out.streaming_jsonl = stream.snapshots_jsonl() + stream.events_jsonl();
  }
  out.events_processed = static_cast<std::uint64_t>(
      metrics.snapshot().value_of("sim.events_processed"));
  for (const auto& [key, when] : engine.monitor().table().chronological()) {
    const auto* record = engine.monitor().table().find(key);
    out.client_counts.emplace_back(key, record ? record->client_count() : 0);
  }
  return out;
}

TEST(StreamingCampaign, SketchClientCountsWithinTwoPercentOfExact) {
  // Randomized campaigns: the sketch-accounted monitor table must agree
  // with the exact table on every per-service client tally to within
  // max(1 client, 2%), and exactly on the service set.
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const auto exact = run_campaign(seed, 1, /*streaming=*/false);
    const auto sketch = run_campaign(seed, 1, /*streaming=*/true);
    ASSERT_EQ(exact.client_counts.size(), sketch.client_counts.size());
    for (std::size_t i = 0; i < exact.client_counts.size(); ++i) {
      ASSERT_EQ(exact.client_counts[i].first, sketch.client_counts[i].first);
      const double e = static_cast<double>(exact.client_counts[i].second);
      const double s = static_cast<double>(sketch.client_counts[i].second);
      EXPECT_NEAR(s, e, std::max(1.0, e * 0.02))
          << "seed " << seed << " service " << i;
    }
  }
}

TEST(StreamingCampaign, ArtifactsByteIdenticalAcrossThreadCounts) {
  const auto t1 = run_campaign(21, 1, /*streaming=*/true);
  const auto t2 = run_campaign(21, 2, /*streaming=*/true);
  const auto t4 = run_campaign(21, 4, /*streaming=*/true);
  ASSERT_FALSE(t1.streaming_jsonl.empty());
  EXPECT_EQ(t1.streaming_jsonl, t2.streaming_jsonl);
  EXPECT_EQ(t1.streaming_jsonl, t4.streaming_jsonl);
  // The sketch-accounted tables must merge to identical client counts
  // too (register-max absorb is shard-order independent).
  EXPECT_EQ(t1.client_counts, t2.client_counts);
  EXPECT_EQ(t1.client_counts, t4.client_counts);
}

TEST(StreamingCampaign, DisabledStreamingIsRngNeutral) {
  // The streaming layer only observes; turning it off must not change
  // the simulation's event stream.
  const auto on = run_campaign(31, 1, /*streaming=*/true);
  const auto off = run_campaign(31, 1, /*streaming=*/false);
  EXPECT_EQ(on.events_processed, off.events_processed);
}

TEST(StreamingCampaign, RunnerWiresStreamingJobs) {
  core::CampaignJob job;
  job.campus_cfg = fast_tiny(41);
  job.engine_cfg.scan_count = 2;
  job.seed = 41;
  job.streaming = true;
  core::CampaignRunner runner(1);
  std::vector<core::CampaignJob> jobs;
  jobs.push_back(std::move(job));
  auto results = runner.run(std::move(jobs));
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok()) << results[0].error;
  ASSERT_NE(results[0].streaming, nullptr);
  EXPECT_GT(results[0].streaming->services_seen(), 0u);
  EXPECT_GT(results[0].streaming->snapshots().size(), 0u);
  // Completeness snapshots must be live: the last window's union
  // estimate reflects the campaign's discovered addresses.
  EXPECT_GT(results[0].streaming->union_addr_estimate(), 0u);
  // stream.* metrics flow through the job's registry.
  EXPECT_GT(results[0].snapshot.value_of("stream.snapshots"), 0.0);
}

}  // namespace
}  // namespace svcdisc
