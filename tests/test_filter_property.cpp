// Property test: the compiled filter VM agrees with a straightforward
// reference interpreter on randomized packets across a corpus of
// expressions covering every operator and nesting shape.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "capture/filter.h"
#include "net/packet.h"
#include "util/rng.h"

namespace svcdisc::capture {
namespace {

using net::Ipv4;
using net::Packet;
using net::Proto;

// Reference semantics, written independently of the VM.
struct Reference {
  std::function<bool(const Packet&)> fn;
};

const Ipv4 kHostA = Ipv4::from_octets(128, 125, 1, 1);
const net::Prefix kNet(Ipv4::from_octets(128, 125, 0, 0), 16);

struct Case {
  const char* expression;
  std::function<bool(const Packet&)> reference;
};

const std::vector<Case>& cases() {
  static const std::vector<Case> kCases{
      {"tcp", [](const Packet& p) { return p.proto == Proto::kTcp; }},
      {"udp", [](const Packet& p) { return p.proto == Proto::kUdp; }},
      {"icmp", [](const Packet& p) { return p.proto == Proto::kIcmp; }},
      {"syn",
       [](const Packet& p) {
         return p.proto == Proto::kTcp && p.flags.syn();
       }},
      {"synack",
       [](const Packet& p) {
         return p.proto == Proto::kTcp && p.flags.is_syn_ack();
       }},
      {"not tcp", [](const Packet& p) { return p.proto != Proto::kTcp; }},
      {"tcp and syn",
       [](const Packet& p) {
         return p.proto == Proto::kTcp && p.flags.syn();
       }},
      {"tcp or udp",
       [](const Packet& p) {
         return p.proto == Proto::kTcp || p.proto == Proto::kUdp;
       }},
      {"udp or tcp and rst",
       [](const Packet& p) {
         return p.proto == Proto::kUdp ||
                (p.proto == Proto::kTcp && p.flags.rst());
       }},
      {"(udp or tcp) and rst",
       [](const Packet& p) {
         return (p.proto == Proto::kUdp || p.proto == Proto::kTcp) &&
                p.proto == Proto::kTcp && p.flags.rst();
       }},
      {"not (tcp and ack)",
       [](const Packet& p) {
         return !(p.proto == Proto::kTcp && p.flags.ack());
       }},
      {"src host 128.125.1.1",
       [](const Packet& p) { return p.src == kHostA; }},
      {"dst host 128.125.1.1",
       [](const Packet& p) { return p.dst == kHostA; }},
      {"host 128.125.1.1",
       [](const Packet& p) { return p.src == kHostA || p.dst == kHostA; }},
      {"src net 128.125.0.0/16",
       [](const Packet& p) { return kNet.contains(p.src); }},
      {"dst net 128.125.0.0/16",
       [](const Packet& p) { return kNet.contains(p.dst); }},
      {"net 128.125.0.0/16",
       [](const Packet& p) {
         return kNet.contains(p.src) || kNet.contains(p.dst);
       }},
      {"src port 80", [](const Packet& p) { return p.sport == 80; }},
      {"dst port 80", [](const Packet& p) { return p.dport == 80; }},
      {"port 80",
       [](const Packet& p) { return p.sport == 80 || p.dport == 80; }},
      {"(tcp and (syn or rst)) or udp or icmp",
       [](const Packet& p) {
         return (p.proto == Proto::kTcp &&
                 (p.flags.syn() || p.flags.rst())) ||
                p.proto == Proto::kUdp || p.proto == Proto::kIcmp;
       }},
      {"tcp and not (port 80 or port 22) and dst net 128.125.0.0/16",
       [](const Packet& p) {
         const bool port_match = p.sport == 80 || p.dport == 80 ||
                                 p.sport == 22 || p.dport == 22;
         return p.proto == Proto::kTcp && !port_match &&
                kNet.contains(p.dst);
       }},
      {"not not tcp", [](const Packet& p) { return p.proto == Proto::kTcp; }},
      {"tcp and syn and not ack and dst port 3306",
       [](const Packet& p) {
         return p.proto == Proto::kTcp && p.flags.syn() && !p.flags.ack() &&
                p.dport == 3306;
       }},
  };
  return kCases;
}

Packet random_packet(util::Rng& rng) {
  Packet p;
  switch (rng.below(3)) {
    case 0: p.proto = Proto::kTcp; break;
    case 1: p.proto = Proto::kUdp; break;
    default: p.proto = Proto::kIcmp; break;
  }
  // Half the packets involve the campus net / the pinned host.
  p.src = rng.chance(0.5) ? Ipv4(kNet.base().value() +
                                 static_cast<std::uint32_t>(rng.below(65536)))
                          : Ipv4(static_cast<std::uint32_t>(rng()));
  p.dst = rng.chance(0.25) ? kHostA
                           : Ipv4(static_cast<std::uint32_t>(rng()));
  const net::Port ports[] = {22, 80, 443, 3306, 1234, 40000};
  p.sport = ports[rng.below(6)];
  p.dport = ports[rng.below(6)];
  p.flags.bits = static_cast<std::uint8_t>(rng.below(32));
  return p;
}

class FilterProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FilterProperty, VmMatchesReference) {
  const Case& c = cases()[GetParam()];
  const auto filter = Filter::compile(c.expression);
  ASSERT_TRUE(filter.has_value()) << c.expression;
  util::Rng rng(0xF1A7E5 + GetParam());
  for (int i = 0; i < 4000; ++i) {
    const Packet p = random_packet(rng);
    ASSERT_EQ(filter->matches(p), c.reference(p))
        << c.expression << " on " << p.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, FilterProperty,
                         ::testing::Range<std::size_t>(0, cases().size()));

}  // namespace
}  // namespace svcdisc::capture
