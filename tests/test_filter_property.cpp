// Property test: the compiled filter VM agrees with a straightforward
// reference interpreter on randomized packets across a corpus of
// expressions covering every operator and nesting shape.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "capture/filter.h"
#include "net/packet.h"
#include "util/rng.h"

namespace svcdisc::capture {
namespace {

using net::Ipv4;
using net::Packet;
using net::Proto;

// Reference semantics, written independently of the VM.
struct Reference {
  std::function<bool(const Packet&)> fn;
};

const Ipv4 kHostA = Ipv4::from_octets(128, 125, 1, 1);
const net::Prefix kNet(Ipv4::from_octets(128, 125, 0, 0), 16);

struct Case {
  const char* expression;
  std::function<bool(const Packet&)> reference;
};

const std::vector<Case>& cases() {
  static const std::vector<Case> kCases{
      {"tcp", [](const Packet& p) { return p.proto == Proto::kTcp; }},
      {"udp", [](const Packet& p) { return p.proto == Proto::kUdp; }},
      {"icmp", [](const Packet& p) { return p.proto == Proto::kIcmp; }},
      {"syn",
       [](const Packet& p) {
         return p.proto == Proto::kTcp && p.flags.syn();
       }},
      {"synack",
       [](const Packet& p) {
         return p.proto == Proto::kTcp && p.flags.is_syn_ack();
       }},
      {"not tcp", [](const Packet& p) { return p.proto != Proto::kTcp; }},
      {"tcp and syn",
       [](const Packet& p) {
         return p.proto == Proto::kTcp && p.flags.syn();
       }},
      {"tcp or udp",
       [](const Packet& p) {
         return p.proto == Proto::kTcp || p.proto == Proto::kUdp;
       }},
      {"udp or tcp and rst",
       [](const Packet& p) {
         return p.proto == Proto::kUdp ||
                (p.proto == Proto::kTcp && p.flags.rst());
       }},
      {"(udp or tcp) and rst",
       [](const Packet& p) {
         return (p.proto == Proto::kUdp || p.proto == Proto::kTcp) &&
                p.proto == Proto::kTcp && p.flags.rst();
       }},
      {"not (tcp and ack)",
       [](const Packet& p) {
         return !(p.proto == Proto::kTcp && p.flags.ack());
       }},
      {"src host 128.125.1.1",
       [](const Packet& p) { return p.src == kHostA; }},
      {"dst host 128.125.1.1",
       [](const Packet& p) { return p.dst == kHostA; }},
      {"host 128.125.1.1",
       [](const Packet& p) { return p.src == kHostA || p.dst == kHostA; }},
      {"src net 128.125.0.0/16",
       [](const Packet& p) { return kNet.contains(p.src); }},
      {"dst net 128.125.0.0/16",
       [](const Packet& p) { return kNet.contains(p.dst); }},
      {"net 128.125.0.0/16",
       [](const Packet& p) {
         return kNet.contains(p.src) || kNet.contains(p.dst);
       }},
      {"src port 80", [](const Packet& p) { return p.sport == 80; }},
      {"dst port 80", [](const Packet& p) { return p.dport == 80; }},
      {"port 80",
       [](const Packet& p) { return p.sport == 80 || p.dport == 80; }},
      {"(tcp and (syn or rst)) or udp or icmp",
       [](const Packet& p) {
         return (p.proto == Proto::kTcp &&
                 (p.flags.syn() || p.flags.rst())) ||
                p.proto == Proto::kUdp || p.proto == Proto::kIcmp;
       }},
      {"tcp and not (port 80 or port 22) and dst net 128.125.0.0/16",
       [](const Packet& p) {
         const bool port_match = p.sport == 80 || p.dport == 80 ||
                                 p.sport == 22 || p.dport == 22;
         return p.proto == Proto::kTcp && !port_match &&
                kNet.contains(p.dst);
       }},
      {"not not tcp", [](const Packet& p) { return p.proto == Proto::kTcp; }},
      {"tcp and syn and not ack and dst port 3306",
       [](const Packet& p) {
         return p.proto == Proto::kTcp && p.flags.syn() && !p.flags.ack() &&
                p.dport == 3306;
       }},
  };
  return kCases;
}

Packet random_packet(util::Rng& rng) {
  Packet p;
  switch (rng.below(3)) {
    case 0: p.proto = Proto::kTcp; break;
    case 1: p.proto = Proto::kUdp; break;
    default: p.proto = Proto::kIcmp; break;
  }
  // Half the packets involve the campus net / the pinned host.
  p.src = rng.chance(0.5) ? Ipv4(kNet.base().value() +
                                 static_cast<std::uint32_t>(rng.below(65536)))
                          : Ipv4(static_cast<std::uint32_t>(rng()));
  p.dst = rng.chance(0.25) ? kHostA
                           : Ipv4(static_cast<std::uint32_t>(rng()));
  const net::Port ports[] = {22, 80, 443, 3306, 1234, 40000};
  p.sport = ports[rng.below(6)];
  p.dport = ports[rng.below(6)];
  p.flags.bits = static_cast<std::uint8_t>(rng.below(32));
  return p;
}

class FilterProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FilterProperty, VmMatchesReference) {
  const Case& c = cases()[GetParam()];
  const auto filter = Filter::compile(c.expression);
  ASSERT_TRUE(filter.has_value()) << c.expression;
  util::Rng rng(0xF1A7E5 + GetParam());
  for (int i = 0; i < 4000; ++i) {
    const Packet p = random_packet(rng);
    ASSERT_EQ(filter->matches(p), c.reference(p))
        << c.expression << " on " << p.to_string();
    // The specialized path and the interpreter must always agree.
    ASSERT_EQ(filter->matches(p), filter->matches_interpreted(p))
        << c.expression << " (" << filter_path_name(filter->path())
        << ") on " << p.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, FilterProperty,
                         ::testing::Range<std::size_t>(0, cases().size()));

// ----------------------------------------------- path specialization --

TEST(FilterSpecialization, PicksExpectedPaths) {
  const auto path_of = [](const char* expr) {
    const auto f = Filter::compile(expr);
    EXPECT_TRUE(f.has_value()) << expr;
    return f ? f->path() : FilterPath::kInterpreted;
  };
  EXPECT_EQ(Filter{}.path(), FilterPath::kMatchAll);
  EXPECT_EQ(path_of(""), FilterPath::kMatchAll);
  // Pure proto/flags programs collapse into the lookup table — including
  // the paper's default tap filter.
  EXPECT_EQ(path_of("tcp"), FilterPath::kProtoFlags);
  EXPECT_EQ(path_of("(tcp and (syn or rst)) or udp or icmp"),
            FilterPath::kProtoFlags);
  EXPECT_EQ(path_of("not (synack or fin)"), FilterPath::kProtoFlags);
  // Conjunctions of a flags part and field tests get the test loop.
  EXPECT_EQ(path_of("udp and dst net 128.125.0.0/16"),
            FilterPath::kConjunction);
  EXPECT_EQ(path_of("port 80"), FilterPath::kConjunction);
  EXPECT_EQ(path_of("tcp and syn and not src host 10.0.0.1"),
            FilterPath::kConjunction);
  // Disjunctions over fields or >4 tests stay on the interpreter.
  EXPECT_EQ(path_of("port 80 or port 22"), FilterPath::kInterpreted);
  EXPECT_EQ(path_of("tcp and not (port 80 or port 22)"),
            FilterPath::kInterpreted);
  EXPECT_EQ(
      path_of("port 1 and port 2 and port 3 and port 4 and port 5"),
      FilterPath::kInterpreted);
}

// ------------------------------------------ random expression fuzzing --

/// Builds a random well-formed expression string; depth-bounded so the
/// interpreter's fixed stack is never at risk.
std::string random_expression(util::Rng& rng, int depth) {
  if (depth == 0 || rng.chance(0.4)) {
    switch (rng.below(12)) {
      case 0: return "tcp";
      case 1: return "udp";
      case 2: return "icmp";
      case 3: return "syn";
      case 4: return "ack";
      case 5: return "rst";
      case 6: return "fin";
      case 7: return "synack";
      case 8: return rng.chance(0.5) ? "src host 128.125.1.1"
                                     : "dst host 66.1.2.3";
      case 9: return rng.chance(0.5) ? "net 128.125.0.0/16"
                                     : "src net 10.0.0.0/8";
      case 10: return rng.chance(0.5) ? "port 80" : "dst port 22";
      default: return "host 128.125.1.1";
    }
  }
  switch (rng.below(3)) {
    case 0:
      return "not (" + random_expression(rng, depth - 1) + ")";
    case 1:
      return "(" + random_expression(rng, depth - 1) + " and " +
             random_expression(rng, depth - 1) + ")";
    default:
      return "(" + random_expression(rng, depth - 1) + " or " +
             random_expression(rng, depth - 1) + ")";
  }
}

TEST(FilterSpecialization, RandomExpressionsAgreeWithInterpreter) {
  util::Rng rng(0xC0FFEE);
  for (int round = 0; round < 400; ++round) {
    const std::string expr = random_expression(rng, 4);
    const auto filter = Filter::compile(expr);
    ASSERT_TRUE(filter.has_value()) << expr;
    for (int i = 0; i < 200; ++i) {
      const Packet p = random_packet(rng);
      ASSERT_EQ(filter->matches(p), filter->matches_interpreted(p))
          << expr << " (" << filter_path_name(filter->path()) << ") on "
          << p.to_string();
    }
  }
}

// ------------------------------------------------- compiler error paths --

TEST(FilterCompileErrors, MalformedExpressionsAreRejected) {
  const char* bad[] = {
      "tcp and",                    // dangling operator
      "and tcp",                    // leading operator
      "not",                        // bare not
      "(tcp",                       // unbalanced paren
      "tcp)",                       // trailing token
      "frobnicate",                 // unknown predicate
      "src",                        // src without host/net/port
      "host 999.1.2.3",             // bad address
      "host 1.2.3",                 // truncated address
      "net 10.0.0.0",               // missing prefix length
      "net 10.0.0.0/33",            // prefix bits out of range
      "port 99999",                 // port out of range
      "port http",                  // non-numeric port
      "tcp udp",                    // missing connective
  };
  for (const char* expr : bad) {
    std::string error;
    const auto f = Filter::compile(expr, &error);
    EXPECT_FALSE(f.has_value()) << expr;
    EXPECT_FALSE(error.empty()) << expr;
  }
}

TEST(FilterCompileErrors, DeepNestingRejectedNotStackOverflow) {
  // Regression for a fuzz-found crasher: ~3*10^5 nested parentheses
  // recursed the compiler off the stack. The parser now fails cleanly
  // past kMaxFilterNesting levels.
  const std::size_t depth = 300000;
  std::string expr(depth, '(');
  expr += "tcp";
  expr.append(depth, ')');
  std::string error;
  const auto f = Filter::compile(expr, &error);
  EXPECT_FALSE(f.has_value());
  EXPECT_NE(error.find("nested"), std::string::npos) << error;

  // At-the-limit nesting still compiles and evaluates correctly.
  std::string ok_expr(kMaxFilterNesting - 1, '(');
  ok_expr += "tcp";
  ok_expr.append(kMaxFilterNesting - 1, ')');
  const auto ok = Filter::compile(ok_expr);
  ASSERT_TRUE(ok.has_value());
  Packet p;
  p.proto = Proto::kTcp;
  EXPECT_TRUE(ok->matches(p));
}

TEST(FilterCompileErrors, LongAndChainCompilesAndStaysCorrect) {
  // Second fuzz-found crasher: and/or chains parse iteratively (no
  // nesting), but specialize() used to recurse per conjunct — ~6*10^4
  // terms overflowed its stack. Oversized programs now skip
  // specialization and run interpreted; semantics must not change.
  std::string expr = "tcp";
  for (int i = 0; i < 60000; ++i) expr += " and syn and tcp";
  const auto f = Filter::compile(expr);
  ASSERT_TRUE(f.has_value());
  Packet syn;
  syn.proto = Proto::kTcp;
  syn.flags = net::flags_syn();
  Packet plain;
  plain.proto = Proto::kTcp;
  EXPECT_TRUE(f->matches(syn));
  EXPECT_FALSE(f->matches(plain));
  EXPECT_EQ(f->matches(syn), f->matches_interpreted(syn));
  EXPECT_EQ(f->matches(plain), f->matches_interpreted(plain));
}

TEST(FilterCompileErrors, EmptyAndWhitespaceCompileToMatchAll) {
  const auto empty = Filter::compile("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(empty->path(), FilterPath::kMatchAll);
  const auto spaces = Filter::compile("   ");
  ASSERT_TRUE(spaces.has_value());
  EXPECT_EQ(spaces->program_size(), 0u);
}

}  // namespace
}  // namespace svcdisc::capture
