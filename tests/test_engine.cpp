// Tests for core::DiscoveryEngine wiring: tap construction, sampled and
// per-link monitors, extra consumers, scan scheduling configuration.
#include <gtest/gtest.h>

#include "capture/pcap_file.h"
#include "capture/sampler.h"
#include "core/engine.h"
#include "workload/campus.h"

namespace svcdisc::core {
namespace {

using util::hours;
using util::kEpoch;
using util::minutes;

workload::CampusConfig fast_tiny() {
  auto cfg = workload::CampusConfig::tiny();
  cfg.duration = util::days(1);
  return cfg;
}

TEST(DiscoveryEngine, OneTapPerPeering) {
  workload::Campus campus(fast_tiny());
  DiscoveryEngine engine(campus, EngineConfig{});
  EXPECT_EQ(engine.tap_count(),
            campus.network().border().peering_count());
  EXPECT_EQ(engine.tap(0).name(), "commercial1");
  EXPECT_EQ(engine.tap(1).name(), "commercial2");
}

TEST(DiscoveryEngine, NoScansWhenDisabled) {
  workload::Campus campus(fast_tiny());
  EngineConfig cfg;
  cfg.scan_count = 0;
  DiscoveryEngine engine(campus, cfg);
  EXPECT_EQ(engine.scheduler(), nullptr);
  engine.run();
  EXPECT_TRUE(engine.prober().scans().empty());
  EXPECT_GT(engine.monitor().table().size(), 0u);
}

TEST(DiscoveryEngine, ScanScheduleRespected) {
  workload::Campus campus(fast_tiny());
  EngineConfig cfg;
  cfg.scan_count = 2;
  cfg.scan_period = hours(12);
  cfg.first_scan_offset = hours(1);
  DiscoveryEngine engine(campus, cfg);
  engine.run();
  ASSERT_EQ(engine.prober().scans().size(), 2u);
  EXPECT_EQ(engine.prober().scans()[0].started, kEpoch + hours(1));
  EXPECT_EQ(engine.prober().scans()[1].started, kEpoch + hours(13));
}

TEST(DiscoveryEngine, SampledMonitorSeesSubset) {
  workload::Campus campus(fast_tiny());
  EngineConfig cfg;
  cfg.scan_count = 0;
  DiscoveryEngine engine(campus, cfg);
  auto& sampled = engine.add_sampled_monitor(
      std::make_unique<capture::FixedPeriodSampler>(minutes(10), hours(1)));
  engine.run();
  EXPECT_LT(sampled.packets_seen(), engine.monitor().packets_seen());
  EXPECT_LE(sampled.table().size(), engine.monitor().table().size());
  // Everything the sampled monitor found, the full monitor found too.
  sampled.table().for_each(
      [&](const passive::ServiceKey& key, const passive::ServiceRecord&) {
        EXPECT_TRUE(engine.monitor().table().contains(key));
      });
}

TEST(DiscoveryEngine, ExcludedMonitorOnlyWhenConfigured) {
  workload::Campus campus(fast_tiny());
  DiscoveryEngine plain(campus, EngineConfig{});
  EXPECT_EQ(plain.excluded_monitor(), nullptr);
}

TEST(DiscoveryEngine, ExtraTapConsumerReceivesTraffic) {
  workload::Campus campus(fast_tiny());
  EngineConfig cfg;
  cfg.scan_count = 0;
  DiscoveryEngine engine(campus, cfg);
  const std::string path = ::testing::TempDir() + "/engine_capture.pcap";
  capture::PcapWriter writer(path);
  ASSERT_TRUE(writer.ok());
  engine.add_tap_consumer(&writer);
  engine.run();
  EXPECT_GT(writer.written(), 100u);
  std::remove(path.c_str());
}

TEST(DiscoveryEngine, LinkMonitorsRequireConfig) {
  workload::Campus campus(fast_tiny());
  EngineConfig cfg;
  cfg.per_link_monitors = true;
  DiscoveryEngine engine(campus, cfg);
  EXPECT_EQ(engine.link_monitor_count(), engine.tap_count());
}

TEST(DiscoveryEngine, AllPortsModeLeavesMonitorUnrestricted) {
  auto cfg = workload::CampusConfig::dtcp_all();
  cfg.duration = util::hours(6);
  workload::Campus campus(cfg);
  EngineConfig ecfg;
  ecfg.scan_count = 0;
  DiscoveryEngine engine(campus, ecfg);
  engine.run();
  // A high-port service revealed by traffic would be recorded; at
  // minimum the dominant web server's SYN-ACKs are.
  EXPECT_GT(engine.monitor().table().size(), 0u);
}

TEST(DiscoveryEngine, UdpModeDetectsUdpServices) {
  auto cfg = workload::CampusConfig::tiny();
  cfg.udp_mode = true;
  cfg.duration = util::days(1);
  workload::Campus campus(cfg);
  EngineConfig ecfg;
  ecfg.scan_count = 1;
  DiscoveryEngine engine(campus, ecfg);
  engine.run();
  while (engine.prober().scan_in_progress()) campus.simulator().step();
  bool saw_udp_passive = false;
  engine.monitor().table().for_each(
      [&](const passive::ServiceKey& key, const passive::ServiceRecord&) {
        saw_udp_passive |= key.proto == net::Proto::kUdp;
      });
  EXPECT_TRUE(saw_udp_passive);
  ASSERT_EQ(engine.prober().scans().size(), 1u);
  EXPECT_GT(engine.prober().scans()[0].count(active::ProbeStatus::kOpenUdp),
            0u);
  EXPECT_GT(engine.prober().scans()[0].count(active::ProbeStatus::kMaybeOpen),
            0u);
}

}  // namespace
}  // namespace svcdisc::core
