// Unit tests for capture: filter language, samplers, taps, pcap I/O,
// stream merging.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "capture/filter.h"
#include "capture/merger.h"
#include "capture/pcap_file.h"
#include "capture/sampler.h"
#include "capture/tap.h"
#include "net/packet.h"

namespace svcdisc::capture {
namespace {

using net::Ipv4;
using net::Packet;
using util::kEpoch;
using util::minutes;

Packet syn() {
  return net::make_tcp(Ipv4::from_octets(6, 6, 6, 6), 1000,
                       Ipv4::from_octets(128, 125, 1, 1), 80,
                       net::flags_syn());
}
Packet synack() {
  return net::make_tcp(Ipv4::from_octets(128, 125, 1, 1), 80,
                       Ipv4::from_octets(6, 6, 6, 6), 1000,
                       net::flags_syn_ack());
}
Packet plain_ack() {
  return net::make_tcp(Ipv4::from_octets(6, 6, 6, 6), 1000,
                       Ipv4::from_octets(128, 125, 1, 1), 80,
                       net::flags_ack());
}
Packet udp_pkt() {
  return net::make_udp(Ipv4::from_octets(6, 6, 6, 6), 53,
                       Ipv4::from_octets(128, 125, 1, 1), 2000, 32);
}

// ---------------------------------------------------------------- Filter --

TEST(Filter, EmptyMatchesAll) {
  const auto f = Filter::compile("");
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->matches(syn()));
  EXPECT_TRUE(f->matches(udp_pkt()));
}

TEST(Filter, ProtoPredicates) {
  EXPECT_TRUE(Filter::compile("tcp")->matches(syn()));
  EXPECT_FALSE(Filter::compile("tcp")->matches(udp_pkt()));
  EXPECT_TRUE(Filter::compile("udp")->matches(udp_pkt()));
}

TEST(Filter, FlagPredicates) {
  EXPECT_TRUE(Filter::compile("syn")->matches(syn()));
  EXPECT_TRUE(Filter::compile("syn")->matches(synack()));  // SYN bit set
  EXPECT_TRUE(Filter::compile("synack")->matches(synack()));
  EXPECT_FALSE(Filter::compile("synack")->matches(syn()));
  EXPECT_FALSE(Filter::compile("rst")->matches(syn()));
  EXPECT_TRUE(Filter::compile("ack")->matches(plain_ack()));
}

TEST(Filter, BooleanCombinators) {
  const auto f = Filter::compile("tcp and (syn or rst)");
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->matches(syn()));
  EXPECT_FALSE(f->matches(plain_ack()));
  EXPECT_FALSE(f->matches(udp_pkt()));

  const auto g = Filter::compile("not tcp");
  EXPECT_FALSE(g->matches(syn()));
  EXPECT_TRUE(g->matches(udp_pkt()));
}

TEST(Filter, PrecedenceAndBeforeOr) {
  // "udp or tcp and rst" must parse as "udp or (tcp and rst)".
  const auto f = Filter::compile("udp or tcp and rst");
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->matches(udp_pkt()));
  EXPECT_FALSE(f->matches(syn()));
}

TEST(Filter, HostPredicates) {
  EXPECT_TRUE(Filter::compile("src host 6.6.6.6")->matches(syn()));
  EXPECT_FALSE(Filter::compile("dst host 6.6.6.6")->matches(syn()));
  EXPECT_TRUE(Filter::compile("host 6.6.6.6")->matches(syn()));
  EXPECT_TRUE(Filter::compile("host 6.6.6.6")->matches(synack()));
}

TEST(Filter, NetPredicates) {
  EXPECT_TRUE(Filter::compile("dst net 128.125.0.0/16")->matches(syn()));
  EXPECT_FALSE(Filter::compile("src net 128.125.0.0/16")->matches(syn()));
  EXPECT_TRUE(Filter::compile("net 128.125.0.0/16")->matches(synack()));
  EXPECT_FALSE(Filter::compile("net 10.0.0.0/8")->matches(syn()));
}

TEST(Filter, PortPredicates) {
  EXPECT_TRUE(Filter::compile("dst port 80")->matches(syn()));
  EXPECT_TRUE(Filter::compile("src port 80")->matches(synack()));
  EXPECT_TRUE(Filter::compile("port 80")->matches(syn()));
  EXPECT_FALSE(Filter::compile("port 443")->matches(syn()));
}

TEST(Filter, DeeplyNested) {
  const auto f = Filter::compile(
      "(tcp and (syn or (rst and not ack))) or (udp and port 53)");
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->matches(syn()));
  EXPECT_TRUE(f->matches(udp_pkt()));
  EXPECT_FALSE(f->matches(plain_ack()));
}

TEST(Filter, SyntaxErrorsReported) {
  std::string error;
  EXPECT_FALSE(Filter::compile("tcp and", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(Filter::compile("(tcp", &error).has_value());
  EXPECT_FALSE(Filter::compile("bogus", &error).has_value());
  EXPECT_FALSE(Filter::compile("port notanumber", &error).has_value());
  EXPECT_FALSE(Filter::compile("host 1.2.3", &error).has_value());
  EXPECT_FALSE(Filter::compile("net 1.2.3.4", &error).has_value());
  EXPECT_FALSE(Filter::compile("src", &error).has_value());
  EXPECT_FALSE(Filter::compile("tcp tcp", &error).has_value());
}

TEST(Filter, PaperDefaultFilter) {
  const Filter f = Tap::paper_default_filter();
  EXPECT_TRUE(f.matches(syn()));
  EXPECT_TRUE(f.matches(synack()));
  EXPECT_TRUE(f.matches(udp_pkt()));
  EXPECT_FALSE(f.matches(plain_ack()));  // data-path TCP is not captured
  const Packet rst = net::make_tcp(Ipv4::from_octets(128, 125, 1, 1), 80,
                                   Ipv4::from_octets(6, 6, 6, 6), 1000,
                                   net::flags_rst());
  EXPECT_TRUE(f.matches(rst));
}

// --------------------------------------------------------------- Sampler --

TEST(FixedPeriodSampler, FirstMinutesOfEachHour) {
  FixedPeriodSampler s(minutes(10), util::hours(1));
  Packet p = syn();
  p.time = kEpoch + minutes(5);
  EXPECT_TRUE(s.keep(p));
  p.time = kEpoch + minutes(15);
  EXPECT_FALSE(s.keep(p));
  p.time = kEpoch + util::hours(3) + minutes(9);
  EXPECT_TRUE(s.keep(p));
  p.time = kEpoch + util::hours(3) + minutes(10);
  EXPECT_FALSE(s.keep(p));
}

TEST(FixedPeriodSampler, CoverageFractionRoughlyOnOverPeriod) {
  FixedPeriodSampler s(minutes(30), util::hours(1));
  int kept = 0;
  Packet p = syn();
  for (int i = 0; i < 6000; ++i) {
    p.time = kEpoch + minutes(i);
    kept += s.keep(p);
  }
  EXPECT_NEAR(kept, 3000, 10);
}

TEST(FixedPeriodSampler, RejectsBadConfig) {
  EXPECT_THROW(FixedPeriodSampler(minutes(90), util::hours(1)),
               std::invalid_argument);
  EXPECT_THROW(FixedPeriodSampler(minutes(1), util::usec(0)),
               std::invalid_argument);
}

TEST(CountSampler, PatternRepeats) {
  CountSampler s(2, 3);
  std::string pattern;
  for (int i = 0; i < 10; ++i) pattern += s.keep(syn()) ? 'K' : '.';
  EXPECT_EQ(pattern, "KK...KK...");
}

TEST(ProbabilisticSampler, MatchesProbability) {
  ProbabilisticSampler s(0.25, 42);
  int kept = 0;
  for (int i = 0; i < 40000; ++i) kept += s.keep(syn());
  EXPECT_NEAR(kept, 10000, 400);
}

TEST(ProbabilisticSampler, RejectsBadProbability) {
  EXPECT_THROW(ProbabilisticSampler(1.5, 1), std::invalid_argument);
}

// ------------------------------------------------------------------- Tap --

class Counter : public sim::PacketObserver {
 public:
  void observe(const Packet&) override { ++count; }
  int count{0};
};

TEST(Tap, FilterAndFanout) {
  Tap tap("test");
  tap.set_filter(*Filter::compile("tcp"));
  Counter a, b;
  tap.add_consumer(&a);
  tap.add_consumer(&b);
  tap.observe(syn());
  tap.observe(udp_pkt());
  EXPECT_EQ(a.count, 1);
  EXPECT_EQ(b.count, 1);
  EXPECT_EQ(tap.seen(), 2u);
  EXPECT_EQ(tap.filtered_out(), 1u);
  EXPECT_EQ(tap.delivered(), 1u);
}

TEST(Tap, SamplerAppliesAfterFilter) {
  Tap tap("test");
  tap.set_sampler(std::make_unique<CountSampler>(1, 1));  // every other
  Counter c;
  tap.add_consumer(&c);
  for (int i = 0; i < 10; ++i) tap.observe(syn());
  EXPECT_EQ(c.count, 5);
  EXPECT_EQ(tap.sampled_out(), 5u);
}

TEST(SampledStream, IndependentOfTapSampler) {
  Tap tap("test");
  Counter full, sampled;
  tap.add_consumer(&full);
  SampledStream stream(std::make_unique<CountSampler>(1, 3), &sampled);
  tap.add_consumer(&stream);
  for (int i = 0; i < 8; ++i) tap.observe(syn());
  EXPECT_EQ(full.count, 8);
  EXPECT_EQ(sampled.count, 2);
}

// ------------------------------------------------------------------ Pcap --

TEST(Pcap, RoundTripPreservesPacketsAndTimes) {
  const std::string path = ::testing::TempDir() + "/svcdisc_roundtrip.pcap";
  {
    PcapWriter writer(path);
    ASSERT_TRUE(writer.ok());
    Packet a = syn();
    a.time = kEpoch + minutes(1);
    Packet b = udp_pkt();
    b.time = kEpoch + minutes(2);
    Packet c = net::make_icmp_port_unreachable(udp_pkt());
    c.time = kEpoch + minutes(3);
    writer.write(a);
    writer.write(b);
    writer.write(c);
    EXPECT_EQ(writer.written(), 3u);
  }
  const auto result = PcapReader::read_file(path);
  EXPECT_TRUE(result.ok);
  ASSERT_EQ(result.packets.size(), 3u);
  EXPECT_EQ(result.skipped, 0u);
  EXPECT_EQ(result.packets[0].proto, net::Proto::kTcp);
  EXPECT_TRUE(result.packets[0].flags.is_syn_only());
  EXPECT_EQ(result.packets[0].time, kEpoch + minutes(1));
  EXPECT_EQ(result.packets[1].proto, net::Proto::kUdp);
  EXPECT_EQ(result.packets[2].proto, net::Proto::kIcmp);
  std::remove(path.c_str());
}

TEST(Pcap, GlobalHeaderIsStandard) {
  const std::string path = ::testing::TempDir() + "/svcdisc_header.pcap";
  {
    PcapWriter writer(path);
    ASSERT_TRUE(writer.ok());
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  unsigned char header[24];
  ASSERT_EQ(std::fread(header, 1, 24, f), 24u);
  std::fclose(f);
  // Little-endian magic 0xa1b2c3d4, version 2.4, linktype 101 (RAW).
  EXPECT_EQ(header[0], 0xd4);
  EXPECT_EQ(header[1], 0xc3);
  EXPECT_EQ(header[2], 0xb2);
  EXPECT_EQ(header[3], 0xa1);
  EXPECT_EQ(header[4], 2);
  EXPECT_EQ(header[6], 4);
  EXPECT_EQ(header[20], 101);
  std::remove(path.c_str());
}

TEST(Pcap, ReadMissingFileFails) {
  const auto result = PcapReader::read_file("/nonexistent/file.pcap");
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.packets.empty());
}

TEST(Pcap, WriterAsTapConsumer) {
  const std::string path = ::testing::TempDir() + "/svcdisc_tap.pcap";
  {
    Tap tap("border");
    tap.set_filter(Tap::paper_default_filter());
    PcapWriter writer(path);
    tap.add_consumer(&writer);
    tap.observe(syn());
    tap.observe(plain_ack());  // filtered out: never written
    tap.observe(synack());
    EXPECT_EQ(writer.written(), 2u);
  }
  const auto result = PcapReader::read_file(path);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.packets.size(), 2u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- Merger --

TEST(Merger, MergesSortedStreamsChronologically) {
  std::vector<std::vector<Packet>> streams(2);
  for (int i = 0; i < 5; ++i) {
    Packet p = syn();
    p.time = kEpoch + minutes(2 * i);
    streams[0].push_back(p);
    Packet q = udp_pkt();
    q.time = kEpoch + minutes(2 * i + 1);
    streams[1].push_back(q);
  }
  const auto merged = merge_streams(streams);
  ASSERT_EQ(merged.size(), 10u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].time, merged[i].time);
  }
}

TEST(Merger, HandlesUnsortedInput) {
  std::vector<std::vector<Packet>> streams(1);
  for (int i = 4; i >= 0; --i) {
    Packet p = syn();
    p.time = kEpoch + minutes(i);
    streams[0].push_back(p);
  }
  const auto merged = merge_streams(streams);
  ASSERT_EQ(merged.size(), 5u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].time, merged[i].time);
  }
}

TEST(Merger, EmptyInputs) {
  EXPECT_TRUE(merge_streams({}).empty());
  std::vector<std::vector<Packet>> streams(3);
  EXPECT_TRUE(merge_streams(streams).empty());
}

TEST(Merger, StableAcrossStreamsAtEqualTimes) {
  std::vector<std::vector<Packet>> streams(2);
  Packet a = syn();
  a.time = kEpoch;
  a.sport = 1;
  Packet b = syn();
  b.time = kEpoch;
  b.sport = 2;
  streams[0].push_back(a);
  streams[1].push_back(b);
  const auto merged = merge_streams(streams);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].sport, 1);
  EXPECT_EQ(merged[1].sport, 2);
}

}  // namespace
}  // namespace svcdisc::capture
