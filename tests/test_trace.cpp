// Tests for util::trace, the flight recorder: disabled-path no-ops,
// ring-wrap drop accounting (recorded + dropped == emits, always),
// concurrent emit exactness, and a campaign smoke test that parses the
// exported file as JSON and checks the Chrome trace-event contract.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "util/metrics.h"
#include "util/trace.h"
#include "workload/campus.h"

namespace svcdisc::util::trace {
namespace {

// ---------------------------------------------------------------------
// Minimal JSON reader — just enough structure to verify the trace-event
// contract without depending on an external parser.
struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type{Type::kNull};
  bool boolean{false};
  double number{0};
  std::string text;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;

  const Json* get(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  bool parse(Json* out) {
    const bool ok = value(out);
    skip_ws();
    return ok && pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool value(Json* out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out->type = Json::Type::kString;
      return string(&out->text);
    }
    if (c == 't' || c == 'f') {
      out->type = Json::Type::kBool;
      out->boolean = c == 't';
      return literal(c == 't' ? "true" : "false");
    }
    if (c == 'n') return literal("null");
    return number(out);
  }
  bool number(Json* out) {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->type = Json::Type::kNumber;
    out->number = std::stod(s_.substr(start, pos_ - start));
    return true;
  }
  bool string(std::string* out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (++pos_ >= s_.size()) return false;
      }
      *out += s_[pos_++];
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool array(Json* out) {
    out->type = Json::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      Json element;
      if (!value(&element)) return false;
      out->array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool object(Json* out) {
    out->type = Json::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || !string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      Json element;
      if (!value(&element)) return false;
      out->object.emplace_back(std::move(key), std::move(element));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_{0};
};

// gtest_discover_tests runs every TEST in its own process, but reset()
// at both ends keeps the recorder's global state safe under manual
// --gtest_filter runs too.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
};

TEST_F(TraceTest, DisabledRecorderIsANoOp) {
  ASSERT_FALSE(enabled());
  instant("noop.instant", 1);
  instant_value("noop.value", 2, 42);
  async_begin("noop.async", 7);
  async_end("noop.async", 7);
  { SVCDISC_TRACE_SPAN("noop.span"); }
  EXPECT_EQ(recorded(), 0u);
  EXPECT_EQ(dropped(), 0u);
  EXPECT_EQ(thread_count(), 0u);
}

TEST_F(TraceTest, RecordsEveryEmitKind) {
  start(64);
  ASSERT_TRUE(enabled());
  instant("kind.instant", 1000);
  instant_value("kind.value", 2000, 99);
  async_begin("kind.async", 5, 3000);
  async_end("kind.async", 5, 4000);
  {
    ScopedSpan span("kind.span", 5000);
    span.set_value(7);
  }
  stop();
  EXPECT_FALSE(enabled());
  EXPECT_EQ(recorded(), 5u);
  EXPECT_EQ(dropped(), 0u);
  EXPECT_EQ(thread_count(), 1u);

  const std::string json = to_chrome_json();
  EXPECT_NE(json.find("\"name\":\"kind.instant\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"kind\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":99"), std::string::npos);
  EXPECT_NE(json.find("\"sim_us\":5000"), std::string::npos);
}

TEST_F(TraceTest, RingWrapDropsOldestAndAccountsExactly) {
  constexpr std::uint64_t kCapacity = 16;
  constexpr std::uint64_t kEmits = 100;
  start(kCapacity);
  for (std::uint64_t i = 0; i < kEmits; ++i) {
    instant_value("wrap.event", static_cast<std::int64_t>(i),
                  static_cast<std::int64_t>(i));
  }
  stop();
  EXPECT_EQ(recorded(), kCapacity);
  EXPECT_EQ(dropped(), kEmits - kCapacity);
  EXPECT_EQ(recorded() + dropped(), kEmits);

  // The survivors are the newest events: values kEmits-16 .. kEmits-1.
  const std::string json = to_chrome_json();
  EXPECT_EQ(json.find("\"value\":0,"), std::string::npos);
  EXPECT_NE(json.find("\"value\":99"), std::string::npos);
  EXPECT_NE(json.find("\"value\":84"), std::string::npos);
  EXPECT_EQ(json.find("\"value\":83"), std::string::npos);
}

TEST_F(TraceTest, ConcurrentEmitsKeepExactAccounting) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  constexpr std::uint64_t kCapacity = 256;  // forces wrap on every ring
  start(kCapacity);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        instant("mt.event", static_cast<std::int64_t>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  stop();

  EXPECT_EQ(thread_count(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(recorded(), kThreads * kCapacity);
  EXPECT_EQ(recorded() + dropped(), kThreads * kPerThread);
}

TEST_F(TraceTest, ExportMetricsPublishesTallies) {
  start(8);
  for (int i = 0; i < 20; ++i) instant("m.event");
  stop();
  MetricsRegistry registry;
  export_metrics(registry);
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.value_of("trace.recorded"), 8.0);
  EXPECT_EQ(snapshot.value_of("trace.dropped"), 12.0);
}

TEST_F(TraceTest, ResetDiscardsEverything) {
  start(64);
  instant("gone.event");
  EXPECT_EQ(recorded(), 1u);
  reset();
  EXPECT_FALSE(enabled());
  EXPECT_EQ(recorded(), 0u);
  EXPECT_EQ(thread_count(), 0u);
  const std::string json = to_chrome_json();
  EXPECT_EQ(json.find("gone.event"), std::string::npos);
}

// Smoke test for the whole export path: trace a real (small) campaign,
// write the file the CLI would write, and parse it back, checking the
// Chrome trace-event contract field by field.
TEST_F(TraceTest, CampaignTraceParsesAsChromeTraceJson) {
  start();
  {
    auto cfg = workload::CampusConfig::tiny();
    workload::Campus campus(cfg);
    core::EngineConfig engine_cfg;
    engine_cfg.scan_count = 4;
    core::DiscoveryEngine engine(campus, engine_cfg);
    engine.run();
  }
  stop();
  ASSERT_GT(recorded(), 0u);

  const std::string path = ::testing::TempDir() + "svcdisc_trace_test.json";
  ASSERT_TRUE(write_chrome_json(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();

  Json doc;
  ASSERT_TRUE(JsonReader(buffer.str()).parse(&doc)) << "not valid JSON";
  ASSERT_EQ(doc.type, Json::Type::kObject);
  const Json* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, Json::Type::kArray);
  ASSERT_FALSE(events->array.empty());

  std::set<std::string> cats;
  bool saw_complete = false;
  bool saw_metadata = false;
  bool saw_sim_time = false;
  for (const Json& e : events->array) {
    ASSERT_EQ(e.type, Json::Type::kObject);
    const Json* name = e.get("name");
    const Json* ph = e.get("ph");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    ASSERT_EQ(name->type, Json::Type::kString);
    ASSERT_EQ(ph->type, Json::Type::kString);
    ASSERT_NE(e.get("pid"), nullptr);
    ASSERT_NE(e.get("tid"), nullptr);
    if (ph->text == "M") {
      saw_metadata = true;
      continue;  // metadata events carry no timestamp
    }
    const Json* ts = e.get("ts");
    ASSERT_NE(ts, nullptr) << name->text;
    EXPECT_EQ(ts->type, Json::Type::kNumber);
    if (ph->text == "X") {
      saw_complete = true;
      const Json* dur = e.get("dur");
      ASSERT_NE(dur, nullptr) << name->text;
      EXPECT_GE(dur->number, 0.0);
    }
    if (ph->text == "b" || ph->text == "e") {
      EXPECT_NE(e.get("id"), nullptr) << name->text;
    }
    if (const Json* args = e.get("args")) {
      if (args->get("sim_us") != nullptr) saw_sim_time = true;
    }
    cats.insert(name->text.substr(0, name->text.find('.')));
  }
  EXPECT_TRUE(saw_metadata);
  EXPECT_TRUE(saw_complete);
  EXPECT_TRUE(saw_sim_time);
  // The acceptance bar: one plain run covers at least five subsystems.
  EXPECT_GE(cats.size(), 5u)
      << "engine/sim/prober/passive/scan_detector expected";
  EXPECT_TRUE(cats.count("engine"));
  EXPECT_TRUE(cats.count("prober"));
  EXPECT_TRUE(cats.count("passive"));
}

}  // namespace
}  // namespace svcdisc::util::trace
