// Property sweeps over host response semantics: for every firewall mode
// and source kind, the host's reply to a SYN follows the paper's
// decision table exactly.
#include <gtest/gtest.h>

#include <optional>

#include "analysis/timeseries.h"
#include "host/host.h"
#include "net/packet.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace svcdisc::host {
namespace {

using net::Ipv4;
using net::Packet;
using net::Prefix;

enum class SourceKind { kExternalClient, kInternalProber };
enum class PortKind { kOpenService, kClosedPort };
enum class Reply { kSynAck, kRst, kSilence };

struct CaseSpec {
  FirewallMode mode;
  SourceKind source;
  PortKind port;
  Reply expected;
};

// The full decision table for SYN handling (kPortKnock: no knock given,
// so the protected service stays silent; closed ports are not covered by
// the port-scoped knock and RST normally).
const CaseSpec kCases[] = {
    {FirewallMode::kOpen, SourceKind::kExternalClient, PortKind::kOpenService,
     Reply::kSynAck},
    {FirewallMode::kOpen, SourceKind::kExternalClient, PortKind::kClosedPort,
     Reply::kRst},
    {FirewallMode::kOpen, SourceKind::kInternalProber, PortKind::kOpenService,
     Reply::kSynAck},
    {FirewallMode::kOpen, SourceKind::kInternalProber, PortKind::kClosedPort,
     Reply::kRst},
    {FirewallMode::kBlockProbers, SourceKind::kExternalClient,
     PortKind::kOpenService, Reply::kSynAck},
    {FirewallMode::kBlockProbers, SourceKind::kInternalProber,
     PortKind::kOpenService, Reply::kSilence},
    {FirewallMode::kBlockProbers, SourceKind::kInternalProber,
     PortKind::kClosedPort, Reply::kSilence},
    {FirewallMode::kBlockExternal, SourceKind::kExternalClient,
     PortKind::kOpenService, Reply::kSilence},
    {FirewallMode::kBlockExternal, SourceKind::kExternalClient,
     PortKind::kClosedPort, Reply::kSilence},
    {FirewallMode::kBlockExternal, SourceKind::kInternalProber,
     PortKind::kOpenService, Reply::kSynAck},
    {FirewallMode::kBlockExternal, SourceKind::kInternalProber,
     PortKind::kClosedPort, Reply::kRst},
    {FirewallMode::kBlockAll, SourceKind::kExternalClient,
     PortKind::kOpenService, Reply::kSilence},
    {FirewallMode::kBlockAll, SourceKind::kInternalProber,
     PortKind::kOpenService, Reply::kSilence},
};

class HostResponse : public ::testing::TestWithParam<CaseSpec> {};

TEST_P(HostResponse, MatchesDecisionTable) {
  const CaseSpec spec = GetParam();
  sim::Simulator sim;
  sim::Network network(sim,
                       {Prefix(Ipv4::from_octets(128, 125, 0, 0), 16),
                        Prefix(Ipv4::from_octets(10, 1, 0, 0), 24)});
  const Ipv4 host_addr = Ipv4::from_octets(128, 125, 7, 7);
  const Ipv4 prober = Ipv4::from_octets(10, 1, 0, 1);
  const Ipv4 client = Ipv4::from_octets(66, 5, 4, 3);

  Host host(1, network, nullptr, host_addr,
            LifecycleConfig{LifecycleKind::kAlwaysOn, {}, {}, false},
            util::Rng(3));
  Service web;
  web.proto = net::Proto::kTcp;
  web.port = 80;
  host.add_service(web);
  host.firewall().set_mode(spec.mode);
  host.firewall().add_prober(prober);
  host.start();

  class Rec : public sim::PacketSink {
   public:
    void on_packet(const Packet& p) override { reply = p; }
    std::optional<Packet> reply;
  } rec;
  const Ipv4 source =
      spec.source == SourceKind::kInternalProber ? prober : client;
  network.attach(source, &rec);
  const net::Port dport = spec.port == PortKind::kOpenService ? 80 : 4444;
  network.send(net::make_tcp(source, 999, host_addr, dport,
                             net::flags_syn()));
  sim.run();

  switch (spec.expected) {
    case Reply::kSynAck:
      ASSERT_TRUE(rec.reply.has_value());
      EXPECT_TRUE(rec.reply->flags.is_syn_ack());
      break;
    case Reply::kRst:
      ASSERT_TRUE(rec.reply.has_value());
      EXPECT_TRUE(rec.reply->flags.rst());
      break;
    case Reply::kSilence:
      EXPECT_FALSE(rec.reply.has_value());
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(DecisionTable, HostResponse,
                         ::testing::ValuesIn(kCases));

// StepCurve property: the incremental structure must agree with a naive
// O(n^2) recomputation over random event sets.
TEST(StepCurveProperty, MatchesNaiveRecomputation) {
  util::Rng rng(0x57EB);
  for (int trial = 0; trial < 50; ++trial) {
    analysis::StepCurve curve;
    std::vector<std::pair<util::TimePoint, double>> events;
    const int n = 1 + static_cast<int>(rng.below(200));
    for (int i = 0; i < n; ++i) {
      const util::TimePoint t{
          static_cast<std::int64_t>(rng.below(1'000'000))};
      const double w = 1.0 + static_cast<double>(rng.below(5));
      curve.add(t, w);
      events.emplace_back(t, w);
    }
    for (int probe = 0; probe < 20; ++probe) {
      const util::TimePoint at{
          static_cast<std::int64_t>(rng.below(1'100'000))};
      double naive = 0;
      for (const auto& [t, w] : events) {
        if (t <= at) naive += w;
      }
      ASSERT_DOUBLE_EQ(curve.at(at), naive) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace svcdisc::host
