// Calibration regression tests: one full-scale DTCP1-18d campaign must
// keep reproducing the paper's headline shapes (EXPERIMENTS.md). These
// are the guardrails that stop a refactor from silently bending the
// reproduction; bands are generous around the paper's values.
//
// This binary runs one ~6 s full-scale simulation in SetUpTestSuite and
// asserts against it from many small tests.
#include <gtest/gtest.h>

#include "core/completeness.h"
#include "util/stats.h"
#include "core/engine.h"
#include "core/report.h"
#include "core/weighted.h"
#include "workload/campus.h"

namespace svcdisc {
namespace {

using util::hours;
using util::kEpoch;

class Dtcp1Campaign : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    campus_ = new workload::Campus(workload::CampusConfig::dtcp1_18d());
    core::EngineConfig cfg;
    cfg.scan_count = 35;
    cfg.scan_period = hours(12);
    cfg.first_scan_offset = hours(1);
    engine_ = new core::DiscoveryEngine(*campus_, cfg);
    engine_->run();
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete campus_;
    engine_ = nullptr;
    campus_ = nullptr;
  }

  static core::Completeness completeness_at(util::TimePoint cutoff) {
    return core::completeness(
        core::addresses_found(engine_->monitor().table(), cutoff),
        core::addresses_found(engine_->prober().table(), cutoff));
  }

  static workload::Campus* campus_;
  static core::DiscoveryEngine* engine_;
};

workload::Campus* Dtcp1Campaign::campus_ = nullptr;
core::DiscoveryEngine* Dtcp1Campaign::engine_ = nullptr;

TEST_F(Dtcp1Campaign, OneScanFindsNearlyAllOf12hUnion) {
  const auto c = completeness_at(kEpoch + hours(12));
  // Paper: 98%.
  EXPECT_GE(c.active_pct(), 94.0);
}

TEST_F(Dtcp1Campaign, TwelveHourPassiveFindsSmallFraction) {
  const auto c = completeness_at(kEpoch + hours(12));
  // Paper: 19%.
  EXPECT_GE(c.passive_pct(), 10.0);
  EXPECT_LE(c.passive_pct(), 30.0);
}

TEST_F(Dtcp1Campaign, EighteenDayPassiveClosesMostOfTheGap) {
  const auto c = completeness_at(kEpoch + util::days(18));
  // Paper: passive 71%, active 94%.
  EXPECT_GE(c.passive_pct(), 60.0);
  EXPECT_LE(c.passive_pct(), 85.0);
  EXPECT_GE(c.active_pct(), 90.0);
  EXPECT_GT(c.active_total, c.passive_total);
}

TEST_F(Dtcp1Campaign, SomeServersOnlyEverSeenPassively) {
  const auto c = completeness_at(kEpoch + util::days(18));
  // Paper: 6.3%.
  EXPECT_GE(util::pct(c.passive_only, c.union_count), 2.0);
  EXPECT_LE(util::pct(c.passive_only, c.union_count), 12.0);
}

TEST_F(Dtcp1Campaign, UnionWithinPaperBallpark) {
  const auto c = completeness_at(kEpoch + util::days(18));
  // Paper: 2,960 servers over 16,130 addresses.
  EXPECT_GE(c.union_count, 2000u);
  EXPECT_LE(c.union_count, 3800u);
}

TEST_F(Dtcp1Campaign, PassiveFindsWeightedMassWithinMinutes) {
  const auto end = kEpoch + campus_->config().duration;
  const auto times =
      core::address_discovery_times(engine_->monitor().table(), end);
  const auto weights = core::address_weights(engine_->monitor().table());
  const auto curves = core::weighted_curves(times, weights);
  // Paper: 99% of flow-weighted servers in 5 minutes; allow 30.
  const auto t99 =
      curves.flow_weighted.time_to_reach(0.99 * curves.flow_weighted.total());
  EXPECT_LT((t99 - kEpoch).usec, util::minutes(30).usec);
}

TEST_F(Dtcp1Campaign, MySqlHasWorstPassiveCompleteness) {
  const auto end = kEpoch + campus_->config().duration;
  const auto pct_for = [&](net::Port port) {
    core::ServiceFilter f;
    f.port = port;
    const auto c = core::completeness(
        core::addresses_found(engine_->monitor().table(), end, f),
        core::addresses_found(engine_->prober().table(), end, f));
    return c.passive_pct();
  };
  const double mysql = pct_for(net::kPortMysql);
  EXPECT_LT(mysql, pct_for(net::kPortHttp));
  EXPECT_LT(mysql, pct_for(net::kPortFtp));
  EXPECT_LT(mysql, pct_for(net::kPortSsh));
  // Paper: 52%.
  EXPECT_GE(mysql, 35.0);
  EXPECT_LE(mysql, 70.0);
}

TEST_F(Dtcp1Campaign, VpnFoundActivelyNotPassively) {
  const auto end = kEpoch + campus_->config().duration;
  core::ServiceFilter vpn;
  auto* campus = campus_;
  vpn.address_pred = [campus](net::Ipv4 addr) {
    return campus->class_of(addr) == host::AddressClass::kVpn;
  };
  const auto passive =
      core::addresses_found(engine_->monitor().table(), end, vpn);
  const auto active =
      core::addresses_found(engine_->prober().table(), end, vpn);
  // Paper: ~100 active vs ~10 passive after 18 days.
  EXPECT_GT(active.size(), 5 * passive.size());
}

TEST_F(Dtcp1Campaign, PppPassiveBeatsActive) {
  const auto end = kEpoch + campus_->config().duration;
  core::ServiceFilter ppp;
  auto* campus = campus_;
  ppp.address_pred = [campus](net::Ipv4 addr) {
    return campus->class_of(addr) == host::AddressClass::kPpp;
  };
  const auto passive =
      core::addresses_found(engine_->monitor().table(), end, ppp);
  const auto active =
      core::addresses_found(engine_->prober().table(), end, ppp);
  // Paper: passive finds ~15% more on PPP.
  EXPECT_GT(passive.size(), active.size());
}

TEST_F(Dtcp1Campaign, ScanDetectorFindsDozensOfScanners) {
  // Paper: 65 scanner IPs.
  EXPECT_GE(engine_->scan_detector().scanner_count(), 30u);
  EXPECT_LE(engine_->scan_detector().scanner_count(), 150u);
}

TEST_F(Dtcp1Campaign, FlaggedScannersAreGenuine) {
  const auto genuine = campus_->scanners().scanner_sources();
  for (const net::Ipv4 flagged : engine_->scan_detector().scanners()) {
    EXPECT_NE(std::find(genuine.begin(), genuine.end(), flagged),
              genuine.end())
        << flagged.to_string();
  }
}

TEST_F(Dtcp1Campaign, ProbesNeverCrossTheBorder) {
  // No prober address may appear as a client anywhere in passive data.
  for (const net::Ipv4 prober : campus_->prober_sources()) {
    engine_->monitor().table().for_each(
        [&](const passive::ServiceKey&, const passive::ServiceRecord& r) {
          EXPECT_FALSE(r.clients.contains(prober));
        });
  }
}

TEST_F(Dtcp1Campaign, AllScansCompleted) {
  EXPECT_EQ(engine_->prober().scans().size(), 35u);
  for (const auto& scan : engine_->prober().scans()) {
    EXPECT_EQ(scan.count(active::ProbeStatus::kPending), 0u);
    // Scans take 1-2 simulated hours (paper: 90-120 minutes).
    const double minutes =
        static_cast<double>((scan.finished - scan.started).usec) / 6e7;
    EXPECT_GT(minutes, 45.0);
    EXPECT_LT(minutes, 150.0);
  }
}

}  // namespace
}  // namespace svcdisc
