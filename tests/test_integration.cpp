// End-to-end integration tests: a small campus campaign through the full
// pipeline (hosts -> border taps -> passive monitor; prober -> scans),
// checking the paper's qualitative relationships hold.
#include <gtest/gtest.h>

#include <memory>

#include "core/completeness.h"
#include "core/engine.h"
#include "core/report.h"
#include "core/weighted.h"
#include "workload/campus.h"

namespace svcdisc {
namespace {

using core::DiscoveryEngine;
using core::EngineConfig;
using host::AddressClass;
using net::Ipv4;
using util::hours;
using util::kEpoch;

// One shared campaign for the whole suite (runs once; assertions are
// read-only). Tiny scenario: 2 days, scans every 12 h.
class Campaign : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    campus_ = new workload::Campus(workload::CampusConfig::tiny());
    EngineConfig cfg;
    cfg.scan_count = 4;
    cfg.scan_period = hours(12);
    cfg.scanner_excluded_monitor = true;
    cfg.per_link_monitors = true;
    engine_ = new DiscoveryEngine(*campus_, cfg);
    engine_->run();
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete campus_;
    engine_ = nullptr;
    campus_ = nullptr;
  }

  static workload::Campus* campus_;
  static DiscoveryEngine* engine_;
};

workload::Campus* Campaign::campus_ = nullptr;
DiscoveryEngine* Campaign::engine_ = nullptr;

TEST_F(Campaign, AllScansCompleted) {
  ASSERT_NE(engine_->scheduler(), nullptr);
  EXPECT_EQ(engine_->scheduler()->fired(), 4);
  EXPECT_EQ(engine_->prober().scans().size(), 4u);
  for (const auto& scan : engine_->prober().scans()) {
    EXPECT_GT(scan.finished.usec, scan.started.usec);
    EXPECT_EQ(scan.outcomes.size(),
              campus_->scan_targets().size() * campus_->tcp_ports().size());
    EXPECT_EQ(scan.count(active::ProbeStatus::kPending), 0u);
  }
}

TEST_F(Campaign, BothMethodsDiscoverServices) {
  EXPECT_GT(engine_->monitor().table().size(), 10u);
  EXPECT_GT(engine_->prober().table().size(), 50u);
}

TEST_F(Campaign, ActiveFindsMoreServersThanPassive) {
  const auto end = kEpoch + campus_->config().duration;
  const auto passive = core::addresses_found(engine_->monitor().table(), end);
  const auto active = core::addresses_found(engine_->prober().table(), end);
  const auto c = core::completeness(passive, active);
  EXPECT_GT(c.active_total, c.passive_total);
  EXPECT_GT(c.active_pct(), 80.0);
}

TEST_F(Campaign, DiscoveriesAreGenuineServices) {
  // Soundness: every actively discovered (addr, port) corresponds to a
  // host that really models that service (no false positives).
  const auto& infos = campus_->hosts();
  std::unordered_map<Ipv4, const host::Host*> by_static_addr;
  for (const auto& info : infos) {
    if (info.cls == AddressClass::kStatic && info.host->address()) {
      by_static_addr[*info.host->address()] = info.host;
    }
  }
  int checked = 0;
  engine_->prober().table().for_each(
      [&](const passive::ServiceKey& key, const passive::ServiceRecord&) {
        const auto it = by_static_addr.find(key.addr);
        if (it == by_static_addr.end()) return;  // transient address churn
        bool modeled = false;
        for (const auto& s : it->second->services()) {
          modeled |= s.proto == key.proto && s.port == key.port;
        }
        EXPECT_TRUE(modeled) << key.addr.to_string() << ":" << key.port;
        ++checked;
      });
  EXPECT_GT(checked, 20);
}

TEST_F(Campaign, PassiveOnlyServersAreFirewalledOrTransient) {
  const auto end = kEpoch + campus_->config().duration;
  const auto passive = core::addresses_found(engine_->monitor().table(), end);
  const auto active = core::addresses_found(engine_->prober().table(), end);
  int passive_only = 0;
  for (const Ipv4 addr : passive) passive_only += !active.contains(addr);
  // The tiny scenario has firewalled hosts and transient churn, so a few
  // passive-only servers must exist ...
  EXPECT_GT(passive_only, 0);
  // ... but they stay a small minority (paper: 2.3% after 12 h).
  EXPECT_LT(passive_only * 5, static_cast<int>(passive.size()));
}

TEST_F(Campaign, ScanDetectorFlagsBigSweepSources) {
  // The tiny scenario schedules full-space sweeps; their sources must be
  // flagged, and flagged sources must be genuine scanner addresses.
  const auto& detector = engine_->scan_detector();
  EXPECT_GT(detector.scanner_count(), 0u);
  const auto genuine = campus_->scanners().scanner_sources();
  for (const Ipv4 flagged : detector.scanners()) {
    EXPECT_NE(std::find(genuine.begin(), genuine.end(), flagged),
              genuine.end())
        << "false positive " << flagged.to_string();
  }
}

TEST_F(Campaign, ScannerExclusionReducesPassiveDiscovery) {
  ASSERT_NE(engine_->excluded_monitor(), nullptr);
  EXPECT_LT(engine_->excluded_monitor()->table().size(),
            engine_->monitor().table().size());
}

TEST_F(Campaign, HotServersDiscoveredAlmostImmediately) {
  const auto end = kEpoch + campus_->config().duration;
  const auto times =
      core::address_discovery_times(engine_->monitor().table(), end);
  const auto weights = core::address_weights(engine_->monitor().table());
  const auto curves = core::weighted_curves(times, weights);
  // Flow-weighted discovery hits 90% long before unweighted does.
  const double total = curves.flow_weighted.total();
  ASSERT_GT(total, 0.0);
  const auto t90 = curves.flow_weighted.time_to_reach(0.9 * total);
  EXPECT_LT(t90, kEpoch + hours(2));
  const auto unweighted_t90 =
      curves.unweighted.time_to_reach(0.9 * curves.unweighted.total());
  EXPECT_GT(unweighted_t90, t90);
}

TEST_F(Campaign, VpnServicesInvisiblePassively) {
  const auto end = kEpoch + campus_->config().duration;
  core::ServiceFilter vpn_filter;
  auto* campus = campus_;
  vpn_filter.address_pred = [campus](Ipv4 addr) {
    return campus->class_of(addr) == AddressClass::kVpn;
  };
  const auto passive_vpn =
      core::addresses_found(engine_->monitor().table(), end, vpn_filter);
  const auto active_vpn =
      core::addresses_found(engine_->prober().table(), end, vpn_filter);
  EXPECT_GT(active_vpn.size(), passive_vpn.size());
}

TEST_F(Campaign, PerLinkMonitorsPartitionTheCombined) {
  // Every service a link monitor saw must be in the combined monitor,
  // and the combined monitor must not exceed the union of links.
  std::size_t union_upper = 0;
  for (std::size_t i = 0; i < engine_->link_monitor_count(); ++i) {
    union_upper += engine_->link_monitor(i).table().size();
    engine_->link_monitor(i).table().for_each(
        [&](const passive::ServiceKey& key, const passive::ServiceRecord&) {
          EXPECT_TRUE(engine_->monitor().table().contains(key));
        });
  }
  EXPECT_GE(union_upper, engine_->monitor().table().size());
  EXPECT_GE(engine_->link_monitor_count(), 2u);
}

TEST_F(Campaign, TapStatisticsConsistent) {
  for (std::size_t i = 0; i < engine_->tap_count(); ++i) {
    const auto& tap = engine_->tap(i);
    EXPECT_EQ(tap.seen(),
              tap.filtered_out() + tap.sampled_out() + tap.delivered());
    EXPECT_GT(tap.seen(), 0u);
  }
}

TEST_F(Campaign, ProbesInvisibleToPassiveMonitor) {
  // No discovered passive service may cite a prober source as client.
  const auto& probers = campus_->prober_sources();
  engine_->monitor().table().for_each(
      [&](const passive::ServiceKey&, const passive::ServiceRecord& record) {
        for (const Ipv4 prober : probers) {
          EXPECT_FALSE(record.clients.contains(prober));
        }
      });
}

// Determinism: two identical tiny campaigns give identical results.
TEST(Determinism, IdenticalSeedsIdenticalDiscoveries) {
  auto run = [] {
    workload::Campus campus(workload::CampusConfig::tiny());
    EngineConfig cfg;
    cfg.scan_count = 2;
    DiscoveryEngine engine(campus, cfg);
    engine.run();
    return std::pair{engine.monitor().table().size(),
                     engine.prober().table().size()};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDiverge) {
  auto run = [](std::uint64_t seed) {
    auto cfg = workload::CampusConfig::tiny();
    cfg.seed = seed;
    workload::Campus campus(cfg);
    EngineConfig ecfg;
    ecfg.scan_count = 1;
    DiscoveryEngine engine(campus, ecfg);
    engine.run();
    return engine.monitor().table().size();
  };
  // Not guaranteed for every pair, but these seeds differ in population
  // layout, so identical outputs would indicate a plumbing bug.
  EXPECT_NE(run(1), run(999));
}

}  // namespace
}  // namespace svcdisc
