// Property tests for the wire codec:
//   * randomized packets survive serialize->parse round trips,
//   * random byte mutations never crash the parser and are caught by
//     checksums or framing (no silently corrupted accepts of the fields
//     the checksums cover),
//   * random garbage never parses.
#include <gtest/gtest.h>

#include "net/packet.h"
#include "net/wire.h"
#include "util/rng.h"

namespace svcdisc::net {
namespace {

Packet random_packet(util::Rng& rng) {
  Packet p;
  p.src = Ipv4(static_cast<std::uint32_t>(rng()));
  p.dst = Ipv4(static_cast<std::uint32_t>(rng()));
  switch (rng.below(3)) {
    case 0: {
      p.proto = Proto::kTcp;
      p.sport = static_cast<Port>(rng.below(65536));
      p.dport = static_cast<Port>(rng.below(65536));
      p.seq = static_cast<std::uint32_t>(rng());
      p.ack_no = static_cast<std::uint32_t>(rng());
      p.flags.bits = static_cast<std::uint8_t>(rng.below(64));
      break;
    }
    case 1: {
      p.proto = Proto::kUdp;
      p.sport = static_cast<Port>(rng.below(65536));
      p.dport = static_cast<Port>(rng.below(65536));
      p.payload_len = static_cast<std::uint16_t>(rng.below(1401));
      break;
    }
    default: {
      p.proto = Proto::kIcmp;
      if (rng.chance(0.5)) {
        p.icmp_type = IcmpType::kDestUnreachable;
        p.icmp_code = IcmpCode::kPortUnreachable;
        p.icmp_orig_dst = Ipv4(static_cast<std::uint32_t>(rng()));
        p.icmp_orig_dport = static_cast<Port>(rng.below(65536));
        p.icmp_orig_proto = rng.chance(0.5) ? Proto::kTcp : Proto::kUdp;
      } else {
        p.icmp_type =
            rng.chance(0.5) ? IcmpType::kEchoReply : IcmpType::kEchoRequest;
      }
      break;
    }
  }
  return p;
}

TEST(WireFuzz, RandomPacketsRoundTrip) {
  util::Rng rng(0xF22);
  for (int i = 0; i < 20000; ++i) {
    const Packet p = random_packet(rng);
    const auto bytes = serialize(p);
    const auto parsed = parse(bytes);
    ASSERT_TRUE(parsed.has_value()) << i << ": " << p.to_string();
    ASSERT_EQ(parsed->proto, p.proto);
    ASSERT_EQ(parsed->src, p.src);
    ASSERT_EQ(parsed->dst, p.dst);
    if (p.proto != Proto::kIcmp) {
      ASSERT_EQ(parsed->sport, p.sport);
      ASSERT_EQ(parsed->dport, p.dport);
    }
    if (p.proto == Proto::kTcp) {
      ASSERT_EQ(parsed->flags.bits, p.flags.bits);
      ASSERT_EQ(parsed->seq, p.seq);
      ASSERT_EQ(parsed->ack_no, p.ack_no);
    }
    if (p.proto == Proto::kUdp) {
      ASSERT_EQ(parsed->payload_len, p.payload_len);
    }
    if (p.proto == Proto::kIcmp &&
        p.icmp_type == IcmpType::kDestUnreachable) {
      ASSERT_EQ(parsed->icmp_orig_dport, p.icmp_orig_dport);
      ASSERT_EQ(parsed->icmp_orig_dst, p.icmp_orig_dst);
    }
  }
}

TEST(WireFuzz, HeaderMutationsAreDetected) {
  // Flipping any byte of the IPv4 header breaks the header checksum (or,
  // for the checksum bytes themselves, mismatches the rest), so parse
  // must reject. Payload mutations beyond the IP header may be accepted
  // for TCP/ICMP only if the transport checksum still validates — which
  // a single bit flip never allows for the covered regions.
  util::Rng rng(0xF23);
  int rejected = 0, attempts = 0;
  for (int i = 0; i < 2000; ++i) {
    const Packet p = random_packet(rng);
    auto bytes = serialize(p);
    const std::size_t pos = rng.below(kIpv4HeaderLen);
    const auto flip = static_cast<std::uint8_t>(1u << rng.below(8));
    bytes[pos] ^= flip;
    ++attempts;
    rejected += !parse(bytes).has_value();
  }
  EXPECT_EQ(rejected, attempts);
}

TEST(WireFuzz, RandomGarbageNeverParses) {
  util::Rng rng(0xF24);
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::uint8_t> garbage(rng.below(120));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
    // Random bytes essentially never carry a valid IPv4 header checksum.
    const auto parsed = parse(garbage);
    if (parsed.has_value()) {
      // Astronomically unlikely; if it happens the header must have
      // genuinely validated.
      ASSERT_TRUE(ipv4_checksum_ok(garbage));
    }
  }
}

TEST(WireFuzz, TruncationsNeverCrash) {
  util::Rng rng(0xF25);
  for (int i = 0; i < 5000; ++i) {
    const Packet p = random_packet(rng);
    const auto bytes = serialize(p);
    const std::size_t len = rng.below(bytes.size());
    // Any strict prefix must be rejected (total-length mismatch) or, for
    // ICMP with truncated embedded payload, parse with defaults — never
    // crash.
    (void)parse(std::span(bytes.data(), len));
  }
  SUCCEED();
}

}  // namespace
}  // namespace svcdisc::net
