// Tests for the extension features: ping-based host discovery in the
// prober, the strict handshake rule in the passive monitor, and the
// ping-silent host behavior.
#include <gtest/gtest.h>

#include <optional>

#include "active/prober.h"
#include "host/host.h"
#include "passive/monitor.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace svcdisc {
namespace {

using host::Host;
using host::LifecycleConfig;
using host::LifecycleKind;
using host::Service;
using net::Ipv4;
using net::Packet;
using net::Prefix;
using util::kEpoch;
using util::minutes;

struct ExtFixture : ::testing::Test {
  ExtFixture()
      : network(sim, {Prefix(Ipv4::from_octets(128, 125, 0, 0), 16),
                      Prefix(Ipv4::from_octets(10, 1, 0, 0), 24)}) {}

  Host& add_host(Ipv4 addr, bool web = true) {
    const host::HostId id = next_id++;
    hosts.push_back(std::make_unique<Host>(
        id, network, nullptr, addr,
        LifecycleConfig{LifecycleKind::kAlwaysOn, {}, {}, false},
        util::Rng(id)));
    if (web) {
      Service s;
      s.proto = net::Proto::kTcp;
      s.port = 80;
      hosts.back()->add_service(s);
    }
    hosts.back()->start();
    return *hosts.back();
  }

  sim::Simulator sim;
  sim::Network network;
  std::vector<std::unique_ptr<Host>> hosts;
  host::HostId next_id{1};
  const Ipv4 prober_addr = Ipv4::from_octets(10, 1, 0, 1);
};

// ------------------------------------------------------ host discovery --

TEST_F(ExtFixture, HostDiscoverySkipsEmptyAddresses) {
  add_host(Ipv4::from_octets(128, 125, 1, 1));
  // Addresses .2-.9 are empty.
  std::vector<Ipv4> targets;
  for (int i = 1; i <= 9; ++i) {
    targets.push_back(Ipv4::from_octets(128, 125, 1,
                                        static_cast<std::uint8_t>(i)));
  }
  active::ScanSpec spec;
  spec.targets = targets;
  spec.tcp_ports = {80, 22};
  spec.probes_per_sec = 100.0;
  spec.host_discovery = true;

  active::Prober prober(network, {{prober_addr}});
  std::optional<active::ScanRecord> record;
  prober.start_scan(spec, [&](const active::ScanRecord& r) { record = r; });
  sim.run();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->hosts_pinged, 9u);
  EXPECT_EQ(record->hosts_alive, 1u);
  // Only the live host's 2 ports were probed (9*2 without discovery).
  EXPECT_EQ(record->outcomes.size(), 2u);
  EXPECT_EQ(record->count(active::ProbeStatus::kOpen), 1u);
}

TEST_F(ExtFixture, HostDiscoveryFasterOnSparseSpace) {
  add_host(Ipv4::from_octets(128, 125, 1, 1));
  std::vector<Ipv4> targets;
  for (int i = 0; i < 100; ++i) {
    targets.push_back(Ipv4::from_octets(128, 125, 2,
                                        static_cast<std::uint8_t>(i)));
  }
  targets.push_back(Ipv4::from_octets(128, 125, 1, 1));

  const auto run_scan = [&](bool discovery) {
    active::ScanSpec spec;
    spec.targets = targets;
    spec.tcp_ports = {80, 22, 21, 443, 3306};
    spec.probes_per_sec = 10.0;
    spec.host_discovery = discovery;
    active::Prober prober(network, {{prober_addr}});
    std::optional<active::ScanRecord> record;
    prober.start_scan(spec, [&](const active::ScanRecord& r) { record = r; });
    sim.run();
    return (record->finished - record->started).usec;
  };
  const auto with = run_scan(true);
  const auto without = run_scan(false);
  // 101 pings + 5 probes vs 505 probes: at least 3x faster.
  EXPECT_LT(with * 3, without);
}

TEST_F(ExtFixture, HostDiscoveryMissesPingSilentHosts) {
  Host& silent = add_host(Ipv4::from_octets(128, 125, 1, 1));
  silent.set_icmp_echo(false);
  add_host(Ipv4::from_octets(128, 125, 1, 2));

  active::ScanSpec spec;
  spec.targets = {Ipv4::from_octets(128, 125, 1, 1),
                  Ipv4::from_octets(128, 125, 1, 2)};
  spec.tcp_ports = {80};
  spec.probes_per_sec = 100.0;
  spec.host_discovery = true;
  active::Prober prober(network, {{prober_addr}});
  prober.start_scan(spec);
  sim.run();
  // The ping-silent host's open web server was never probed.
  EXPECT_EQ(prober.table().size(), 1u);
  EXPECT_FALSE(prober.table().contains(
      {Ipv4::from_octets(128, 125, 1, 1), net::Proto::kTcp, 80}));

  // A plain scan finds both.
  spec.host_discovery = false;
  prober.start_scan(spec);
  sim.run();
  EXPECT_EQ(prober.table().size(), 2u);
}

TEST_F(ExtFixture, PingSilentHostStillServesTcp) {
  Host& h = add_host(Ipv4::from_octets(128, 125, 1, 1));
  h.set_icmp_echo(false);
  class Rec : public sim::PacketSink {
   public:
    void on_packet(const Packet& p) override { got.push_back(p); }
    std::vector<Packet> got;
  } rec;
  network.attach(prober_addr, &rec);

  Packet ping;
  ping.src = prober_addr;
  ping.dst = *h.address();
  ping.proto = net::Proto::kIcmp;
  ping.icmp_type = net::IcmpType::kEchoRequest;
  network.send(ping);
  network.send(net::make_tcp(prober_addr, 1, *h.address(), 80,
                             net::flags_syn()));
  sim.run();
  ASSERT_EQ(rec.got.size(), 1u);  // no echo reply, but a SYN-ACK
  EXPECT_TRUE(rec.got[0].flags.is_syn_ack());
}

// ------------------------------------------------- strict handshake rule

passive::MonitorConfig strict_config() {
  passive::MonitorConfig cfg;
  cfg.internal_prefixes = {Prefix(Ipv4::from_octets(128, 125, 0, 0), 16)};
  cfg.tcp_ports = {80};
  cfg.require_syn_before_synack = true;
  return cfg;
}

Packet at(Packet p, util::TimePoint t) {
  p.time = t;
  return p;
}

TEST(StrictRule, PairedHandshakeDiscovered) {
  passive::PassiveMonitor monitor(strict_config());
  const Ipv4 server = Ipv4::from_octets(128, 125, 1, 1);
  const Ipv4 client = Ipv4::from_octets(66, 1, 1, 1);
  monitor.observe(at(net::make_tcp(client, 999, server, 80,
                                   net::flags_syn()),
                     kEpoch));
  monitor.observe(at(net::make_tcp(server, 80, client, 999,
                                   net::flags_syn_ack()),
                     kEpoch + minutes(1)));
  EXPECT_EQ(monitor.table().size(), 1u);
  EXPECT_EQ(monitor.unmatched_syn_acks(), 0u);
}

TEST(StrictRule, OrphanSynAckRejected) {
  passive::PassiveMonitor monitor(strict_config());
  const Ipv4 server = Ipv4::from_octets(128, 125, 1, 1);
  const Ipv4 client = Ipv4::from_octets(66, 1, 1, 1);
  monitor.observe(at(net::make_tcp(server, 80, client, 999,
                                   net::flags_syn_ack()),
                     kEpoch));
  EXPECT_EQ(monitor.table().size(), 0u);
  EXPECT_EQ(monitor.unmatched_syn_acks(), 1u);
}

TEST(StrictRule, SynConsumedByMatch) {
  passive::PassiveMonitor monitor(strict_config());
  const Ipv4 server = Ipv4::from_octets(128, 125, 1, 1);
  const Ipv4 client = Ipv4::from_octets(66, 1, 1, 1);
  const Packet syn = net::make_tcp(client, 999, server, 80, net::flags_syn());
  const Packet synack =
      net::make_tcp(server, 80, client, 999, net::flags_syn_ack());
  monitor.observe(at(syn, kEpoch));
  monitor.observe(at(synack, kEpoch + minutes(1)));
  EXPECT_EQ(monitor.table().size(), 1u);
  // A second SYN-ACK without a fresh SYN consumed the pending entry
  // already, but the service is known: it counts as renewed evidence
  // (touch), not as an unmatched orphan — under lossy capture the
  // missing SYN is the common case and must not erase prior knowledge.
  monitor.observe(at(synack, kEpoch + minutes(2)));
  EXPECT_EQ(monitor.unmatched_syn_acks(), 0u);
  EXPECT_EQ(monitor.table().size(), 1u);
  const passive::ServiceRecord* rec =
      monitor.table().find({server, net::Proto::kTcp, 80});
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->last_activity, kEpoch + minutes(2));
}

TEST(StrictRule, DefaultRuleAcceptsOrphans) {
  passive::MonitorConfig cfg = strict_config();
  cfg.require_syn_before_synack = false;
  passive::PassiveMonitor monitor(cfg);
  monitor.observe(at(net::make_tcp(Ipv4::from_octets(128, 125, 1, 1), 80,
                                   Ipv4::from_octets(66, 1, 1, 1), 999,
                                   net::flags_syn_ack()),
                     kEpoch));
  EXPECT_EQ(monitor.table().size(), 1u);
}

}  // namespace
}  // namespace svcdisc
