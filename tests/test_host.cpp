// Unit tests for host: response semantics, firewalls, address pools,
// lifecycles.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "host/address_pool.h"
#include "host/firewall.h"
#include "host/host.h"
#include "net/packet.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace svcdisc::host {
namespace {

using net::Ipv4;
using net::Packet;
using net::Prefix;
using util::hours;
using util::kEpoch;

class Recorder : public sim::PacketSink {
 public:
  void on_packet(const Packet& p) override { received.push_back(p); }
  std::vector<Packet> received;
};

struct HostFixture : ::testing::Test {
  HostFixture()
      : network(sim, {Prefix(Ipv4::from_octets(128, 125, 0, 0), 16),
                      Prefix(Ipv4::from_octets(10, 1, 0, 0), 24)}) {}

  Host make_host(Ipv4 addr) {
    return Host(next_id++, network, nullptr, addr,
                LifecycleConfig{LifecycleKind::kAlwaysOn, {}, {}, false},
                util::Rng(99));
  }

  // Sends `p` to the host and runs the sim; returns the first packet the
  // querier got back, if any.
  std::optional<Packet> exchange(Host& host, Packet p, Ipv4 querier) {
    (void)host;
    Recorder rec;
    network.attach(querier, &rec);
    network.send(p);
    sim.run();
    network.detach(querier, &rec);
    if (rec.received.empty()) return std::nullopt;
    return rec.received.front();
  }

  sim::Simulator sim;
  sim::Network network;
  HostId next_id{1};
  const Ipv4 host_addr = Ipv4::from_octets(128, 125, 5, 5);
  const Ipv4 ext_client = Ipv4::from_octets(66, 2, 3, 4);
  const Ipv4 prober = Ipv4::from_octets(10, 1, 0, 1);
};

Service tcp80() {
  Service s;
  s.proto = net::Proto::kTcp;
  s.port = 80;
  return s;
}

TEST_F(HostFixture, SynToOpenServiceGetsSynAck) {
  Host h = make_host(host_addr);
  h.add_service(tcp80());
  h.start();
  const auto reply = exchange(
      h, net::make_tcp(ext_client, 1234, host_addr, 80, net::flags_syn()),
      ext_client);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->flags.is_syn_ack());
  EXPECT_EQ(reply->src, host_addr);
  EXPECT_EQ(reply->sport, 80);
}

TEST_F(HostFixture, SynAckAcksIsn) {
  Host h = make_host(host_addr);
  h.add_service(tcp80());
  h.start();
  Packet syn = net::make_tcp(ext_client, 1234, host_addr, 80, net::flags_syn());
  syn.seq = 1000;
  const auto reply = exchange(h, syn, ext_client);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->ack_no, 1001u);
}

TEST_F(HostFixture, SynToClosedPortGetsRst) {
  Host h = make_host(host_addr);
  h.add_service(tcp80());
  h.start();
  const auto reply = exchange(
      h, net::make_tcp(ext_client, 1234, host_addr, 22, net::flags_syn()),
      ext_client);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->flags.rst());
}

TEST_F(HostFixture, NonSynTcpIgnored) {
  Host h = make_host(host_addr);
  h.add_service(tcp80());
  h.start();
  EXPECT_FALSE(exchange(
      h, net::make_tcp(ext_client, 1234, host_addr, 80, net::flags_ack()),
      ext_client));
  EXPECT_FALSE(exchange(
      h, net::make_tcp(ext_client, 1234, host_addr, 80, net::flags_rst()),
      ext_client));
}

TEST_F(HostFixture, ServiceBirthAndDeathRespected) {
  Host h = make_host(host_addr);
  Service s = tcp80();
  s.birth = kEpoch + hours(10);
  s.death = kEpoch + hours(20);
  h.add_service(s);
  h.start();

  auto probe = [&] {
    return exchange(
        h, net::make_tcp(ext_client, 1, host_addr, 80, net::flags_syn()),
        ext_client);
  };
  // Before birth: RST (host alive, no service).
  auto reply = probe();
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->flags.rst());
  // Alive window: SYN-ACK.
  sim.run_until(kEpoch + hours(12));
  reply = probe();
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->flags.is_syn_ack());
  // After death: RST again.
  sim.run_until(kEpoch + hours(30));
  reply = probe();
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->flags.rst());
}

TEST_F(HostFixture, UdpServiceRepliesToClientTraffic) {
  Host h = make_host(host_addr);
  Service s;
  s.proto = net::Proto::kUdp;
  s.port = 53;
  s.udp_replies_to_generic_probe = false;
  h.add_service(s);
  h.start();
  // Payload > 0: genuine client datagram, always answered.
  const auto reply = exchange(
      h, net::make_udp(ext_client, 999, host_addr, 53, 64), ext_client);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->proto, net::Proto::kUdp);
  EXPECT_EQ(reply->sport, 53);
}

TEST_F(HostFixture, UdpGenericProbeOnlyAnsweredWhenImplementationDoes) {
  Host h = make_host(host_addr);
  Service silent;
  silent.proto = net::Proto::kUdp;
  silent.port = 137;
  silent.udp_replies_to_generic_probe = false;
  h.add_service(silent);
  Service chatty;
  chatty.proto = net::Proto::kUdp;
  chatty.port = 53;
  chatty.udp_replies_to_generic_probe = true;
  h.add_service(chatty);
  h.start();

  EXPECT_FALSE(exchange(h, net::make_udp(prober, 1, host_addr, 137, 0),
                        prober));
  const auto reply =
      exchange(h, net::make_udp(prober, 1, host_addr, 53, 0), prober);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->proto, net::Proto::kUdp);
}

TEST_F(HostFixture, UdpClosedPortGetsIcmpUnreachable) {
  Host h = make_host(host_addr);
  h.start();
  const auto reply =
      exchange(h, net::make_udp(prober, 1, host_addr, 9999, 0), prober);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->proto, net::Proto::kIcmp);
  EXPECT_EQ(reply->icmp_code, net::IcmpCode::kPortUnreachable);
  EXPECT_EQ(reply->icmp_orig_dport, 9999);
}

TEST_F(HostFixture, UdpIcmpCanBeDisabled) {
  Host h = make_host(host_addr);
  h.set_udp_icmp(false);
  h.start();
  EXPECT_FALSE(
      exchange(h, net::make_udp(prober, 1, host_addr, 9999, 0), prober));
}

TEST_F(HostFixture, EchoRequestAnswered) {
  Host h = make_host(host_addr);
  h.start();
  Packet ping;
  ping.src = ext_client;
  ping.dst = host_addr;
  ping.proto = net::Proto::kIcmp;
  ping.icmp_type = net::IcmpType::kEchoRequest;
  const auto reply = exchange(h, ping, ext_client);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->icmp_type, net::IcmpType::kEchoReply);
}

TEST_F(HostFixture, FirewallBlockProbersDropsOnlyProbers) {
  Host h = make_host(host_addr);
  h.add_service(tcp80());
  h.firewall().set_mode(FirewallMode::kBlockProbers);
  h.firewall().add_prober(prober);
  h.start();
  // Prober: silence.
  EXPECT_FALSE(exchange(
      h, net::make_tcp(prober, 1, host_addr, 80, net::flags_syn()), prober));
  // Genuine client: answered.
  const auto reply = exchange(
      h, net::make_tcp(ext_client, 1, host_addr, 80, net::flags_syn()),
      ext_client);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->flags.is_syn_ack());
}

TEST_F(HostFixture, FirewallBlockExternalAllowsInternal) {
  Host h = make_host(host_addr);
  h.add_service(tcp80());
  h.firewall().set_mode(FirewallMode::kBlockExternal);
  h.start();
  EXPECT_FALSE(exchange(
      h, net::make_tcp(ext_client, 1, host_addr, 80, net::flags_syn()),
      ext_client));
  const auto reply = exchange(
      h, net::make_tcp(prober, 1, host_addr, 80, net::flags_syn()), prober);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->flags.is_syn_ack());
}

TEST_F(HostFixture, PortScopedFirewallOverride) {
  // The MySQL pattern: 3306 blocked externally, web still open.
  Host h = make_host(host_addr);
  h.add_service(tcp80());
  Service mysql;
  mysql.proto = net::Proto::kTcp;
  mysql.port = 3306;
  h.add_service(mysql);
  h.firewall().set_port_mode(3306, FirewallMode::kBlockExternal);
  h.start();

  EXPECT_FALSE(exchange(
      h, net::make_tcp(ext_client, 1, host_addr, 3306, net::flags_syn()),
      ext_client));
  auto reply = exchange(
      h, net::make_tcp(ext_client, 1, host_addr, 80, net::flags_syn()),
      ext_client);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->flags.is_syn_ack());
  reply = exchange(
      h, net::make_tcp(prober, 1, host_addr, 3306, net::flags_syn()), prober);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->flags.is_syn_ack());
}

TEST_F(HostFixture, RequiresExactlyOneAddressSource) {
  AddressPool pool(AddressClass::kDhcp,
                   Prefix(Ipv4::from_octets(128, 125, 56, 0), 24), false, 1);
  EXPECT_THROW(Host(1, network, nullptr, std::nullopt,
                    LifecycleConfig{}, util::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(Host(1, network, &pool, host_addr, LifecycleConfig{},
                    util::Rng(1)),
               std::invalid_argument);
}

// ----------------------------------------------------------- AddressPool --

TEST(AddressPool, GrantsDistinctAddresses) {
  AddressPool pool(AddressClass::kPpp,
                   Prefix(Ipv4::from_octets(128, 125, 60, 0), 28), false, 7);
  std::vector<Ipv4> leased;
  for (std::uint32_t id = 0; id < 16; ++id) {
    const auto addr = pool.acquire(id);
    ASSERT_TRUE(addr.has_value());
    for (const Ipv4 prev : leased) EXPECT_NE(*addr, prev);
    leased.push_back(*addr);
  }
  EXPECT_FALSE(pool.acquire(99).has_value());  // exhausted
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(AddressPool, ReleaseRecycles) {
  AddressPool pool(AddressClass::kPpp,
                   Prefix(Ipv4::from_octets(128, 125, 60, 0), 30), false, 7);
  const auto a = pool.acquire(1);
  ASSERT_TRUE(a);
  pool.release(1, *a);
  EXPECT_EQ(pool.free_count(), 4u);
}

TEST(AddressPool, StickyPoolReturnsSameAddress) {
  AddressPool pool(AddressClass::kDhcp,
                   Prefix(Ipv4::from_octets(128, 125, 56, 0), 24), true, 7);
  const auto first = pool.acquire(42);
  ASSERT_TRUE(first);
  pool.release(42, *first);
  const auto second = pool.acquire(42);
  ASSERT_TRUE(second);
  EXPECT_EQ(*first, *second);
}

TEST(AddressPool, StickyReservationNotHandedToOthers) {
  AddressPool pool(AddressClass::kDhcp,
                   Prefix(Ipv4::from_octets(128, 125, 56, 0), 30), true, 7);
  const auto a = pool.acquire(1);
  ASSERT_TRUE(a);
  pool.release(1, *a);
  // Other hosts drain the pool; host 1's reservation survives.
  for (std::uint32_t id = 2; id <= 4; ++id) {
    const auto other = pool.acquire(id);
    ASSERT_TRUE(other);
    EXPECT_NE(*other, *a);
  }
  EXPECT_EQ(pool.acquire(1), a);
}

TEST(AddressPool, NonStickyReassignsAddresses) {
  AddressPool pool(AddressClass::kPpp,
                   Prefix(Ipv4::from_octets(128, 125, 60, 0), 30), false, 7);
  const auto a = pool.acquire(1);
  ASSERT_TRUE(a);
  pool.release(1, *a);
  // Another host can now get host 1's old address.
  bool reused = false;
  for (std::uint32_t id = 2; id <= 5; ++id) {
    const auto other = pool.acquire(id);
    if (other && *other == *a) reused = true;
  }
  EXPECT_TRUE(reused);
}

TEST(AddressPool, ForeignReleaseIgnored) {
  AddressPool pool(AddressClass::kPpp,
                   Prefix(Ipv4::from_octets(128, 125, 60, 0), 30), false, 7);
  const std::size_t before = pool.free_count();
  pool.release(1, Ipv4::from_octets(1, 2, 3, 4));  // not in prefix
  EXPECT_EQ(pool.free_count(), before);
}

TEST(AddressPool, ClassNames) {
  EXPECT_EQ(address_class_name(AddressClass::kStatic), "static");
  EXPECT_EQ(address_class_name(AddressClass::kVpn), "vpn");
  EXPECT_TRUE(is_transient(AddressClass::kPpp));
  EXPECT_FALSE(is_transient(AddressClass::kStatic));
}

// -------------------------------------------------------------- Lifecycle --

TEST_F(HostFixture, TransientHostCyclesOnAndOff) {
  AddressPool pool(AddressClass::kPpp,
                   Prefix(Ipv4::from_octets(128, 125, 60, 0), 23), false, 7);
  Host h(500, network, &pool, std::nullopt,
         LifecycleConfig{LifecycleKind::kTransient, hours(2), hours(4), false},
         util::Rng(123));
  int transitions = 0;
  h.on_state_change = [&](Host&, bool) { ++transitions; };
  h.start();
  sim.run_until(kEpoch + util::days(10));
  EXPECT_GT(transitions, 10);
  EXPECT_GT(h.lease_count(), 5u);
}

TEST_F(HostFixture, OfflineHostUnreachable) {
  AddressPool pool(AddressClass::kPpp,
                   Prefix(Ipv4::from_octets(128, 125, 60, 0), 23), false, 7);
  Host h(501, network, &pool, std::nullopt,
         LifecycleConfig{LifecycleKind::kTransient, hours(2), hours(6), false},
         util::Rng(9));
  h.add_service(tcp80());
  h.start();

  // Wait until it is online, capture the address, then wait for offline.
  std::optional<Ipv4> online_addr;
  h.on_state_change = [&](Host& host, bool online) {
    if (online && !online_addr) online_addr = host.address();
  };
  while (!h.online() && sim.step()) {
  }
  ASSERT_TRUE(h.online());
  ASSERT_TRUE(h.address().has_value());
  const Ipv4 addr = *h.address();

  while (h.online() && sim.step()) {
  }
  ASSERT_FALSE(h.online());
  // Probing the released address now elicits nothing.
  Recorder rec;
  network.attach(prober, &rec);
  network.send(net::make_tcp(prober, 1, addr, 80, net::flags_syn()));
  sim.run_until(sim.now() + hours(1));
  EXPECT_TRUE(rec.received.empty());
  network.detach(prober, &rec);
}

TEST_F(HostFixture, AlwaysOnHostStaysOnline) {
  Host h = make_host(host_addr);
  h.start();
  sim.run_until(kEpoch + util::days(30));
  EXPECT_TRUE(h.online());
  EXPECT_EQ(h.lease_count(), 1u);
}

}  // namespace
}  // namespace svcdisc::host
