// Property tests for table persistence, sharing the structural-equality
// oracle with the fuzz_table_io harness (fuzz/oracles.h). The contract
// under test: for any table T, load(save(T)) is structurally equal to T
// and save(load(save(T))) is byte-identical to save(T) — i.e. save∘load
// is a fixpoint after one round. Plus the golden corpus files that
// pin the satellite bugfixes (clamping, icmp rows, backwards time,
// flow-only rows).
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "fuzz/oracles.h"
#include "net/packet.h"
#include "passive/table_io.h"
#include "util/rng.h"
#include "workload/campus.h"

namespace svcdisc::passive {
namespace {

using net::Ipv4;
using util::hours;
using util::kEpoch;

std::string corpus(const char* name) {
  return std::string(SVCDISC_FUZZ_CORPUS_DIR) + "/table_io/" + name;
}

// Random table with fuzz-shaped contents: several protocols, varied
// client counts (including zero-client flow-only services), spread
// timestamps.
ServiceTable random_table(util::Rng& rng) {
  ServiceTable table;
  const std::size_t services = 1 + rng.below(40);
  for (std::size_t i = 0; i < services; ++i) {
    constexpr net::Proto kProtos[] = {net::Proto::kTcp, net::Proto::kUdp,
                                      net::Proto::kIcmp};
    const net::Proto proto = kProtos[rng.below(3)];
    const ServiceKey key{Ipv4(static_cast<std::uint32_t>(rng())), proto,
                         static_cast<net::Port>(rng.below(65536))};
    const auto first = kEpoch + hours(rng.below(1000));
    table.discover(key, first);
    const std::size_t flows = rng.below(6);
    for (std::size_t f = 0; f < flows; ++f) {
      table.count_flow(key, Ipv4(static_cast<std::uint32_t>(rng())),
                       first + hours(1 + rng.below(100)));
    }
  }
  return table;
}

std::string save_to_string(const ServiceTable& table) {
  std::ostringstream out;
  EXPECT_TRUE(save_table(table, out));
  return out.str();
}

TEST(TableIoProperty, RandomTablesRoundTripStructurally) {
  util::Rng rng(20260806);
  for (int trial = 0; trial < 50; ++trial) {
    const ServiceTable table = random_table(rng);
    const std::string first = save_to_string(table);
    std::istringstream in(first);
    const auto loaded = load_table(in);
    ASSERT_TRUE(loaded.ok);
    EXPECT_EQ(loaded.malformed, 0u) << "trial " << trial;
    EXPECT_EQ(loaded.clamped, 0u) << "trial " << trial;
    EXPECT_EQ(loaded.rows, table.size()) << "trial " << trial;

    std::string why;
    EXPECT_TRUE(fuzz::tables_equal(table, loaded.table, &why))
        << "trial " << trial << ": " << why;

    // Fixpoint: a second save of the reloaded table is byte-identical.
    EXPECT_EQ(save_to_string(loaded.table), first) << "trial " << trial;
  }
}

TEST(TableIoProperty, CampaignTableSaveLoadSaveByteIdentical) {
  // The acceptance-level golden: a table produced by an actual
  // simulated campaign (not hand-built rows) survives save→load→save
  // byte-identically.
  auto cfg = workload::CampusConfig::tiny();
  cfg.duration = util::days(1);
  workload::Campus campus(cfg);
  core::DiscoveryEngine engine(campus, core::EngineConfig{});
  engine.run();
  const ServiceTable& table = engine.monitor().table();
  ASSERT_GT(table.size(), 0u);

  const std::string first = save_to_string(table);
  std::istringstream in(first);
  const auto loaded = load_table(in);
  ASSERT_TRUE(loaded.ok);
  EXPECT_EQ(loaded.malformed, 0u);
  EXPECT_EQ(loaded.clamped, 0u);
  std::string why;
  EXPECT_TRUE(fuzz::tables_equal(table, loaded.table, &why)) << why;
  EXPECT_EQ(save_to_string(loaded.table), first);
}

TEST(TableIoProperty, MalformedMixCorpusGolden) {
  // Exact accounting for the checked-in mixed corpus file: 3 loadable
  // rows (one of which clamps its client tally), 5 malformed.
  const auto loaded = load_table(corpus("malformed_mix.tsv"));
  ASSERT_TRUE(loaded.ok);
  EXPECT_EQ(loaded.rows, 3u);
  EXPECT_EQ(loaded.malformed, 5u);
  EXPECT_EQ(loaded.clamped, 1u);
  EXPECT_EQ(loaded.table.size(), 3u);
}

TEST(TableIoProperty, HugeClientCountClampsInsteadOfSpinning) {
  // Regression for the ~2^64-iteration reconstruction loop: a row
  // claiming UINT64_MAX clients/flows must load promptly with the
  // client tally clamped to kMaxRestoredClients.
  const auto start = std::chrono::steady_clock::now();
  const auto loaded = load_table(corpus("crash_huge_clients.tsv"));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(loaded.ok);
  EXPECT_EQ(loaded.rows, 1u);
  EXPECT_EQ(loaded.clamped, 1u);
  // Generous bound — the old code would not finish in the lifetime of
  // the machine.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            30);

  const auto* record = loaded.table.find(
      {Ipv4::from_octets(128, 125, 0, 9), net::Proto::kTcp, 443});
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->clients.size(), kMaxRestoredClients);
  // The flow tally is restored exactly — only client placeholders clamp.
  EXPECT_EQ(record->flows, std::uint64_t(-1));
}

TEST(TableIoProperty, IcmpRowsRoundTrip) {
  // save emitted "icmp" but load rejected it — every icmp service
  // silently vanished across a checkpoint/restore cycle.
  ServiceTable table;
  const ServiceKey icmp{Ipv4::from_octets(128, 125, 0, 7),
                        net::Proto::kIcmp, 0};
  table.discover(icmp, kEpoch + hours(1));
  const std::string text = save_to_string(table);
  EXPECT_NE(text.find("icmp"), std::string::npos);

  std::istringstream in(text);
  const auto loaded = load_table(in);
  ASSERT_TRUE(loaded.ok);
  EXPECT_EQ(loaded.malformed, 0u);
  EXPECT_TRUE(loaded.table.contains(icmp));

  const auto from_corpus = load_table(corpus("icmp_row.tsv"));
  ASSERT_TRUE(from_corpus.ok);
  EXPECT_EQ(from_corpus.rows, 1u);
  EXPECT_EQ(from_corpus.malformed, 0u);
}

TEST(TableIoProperty, FlowOnlyServiceKeepsZeroClients) {
  // clients=0/flows>0 used to reload as clients=1: the flow-replay
  // reconstruction charged every flow to placeholder client Ipv4(0).
  const auto loaded = load_table(corpus("flow_only_zero_clients.tsv"));
  ASSERT_TRUE(loaded.ok);
  EXPECT_EQ(loaded.rows, 1u);
  const auto* record = loaded.table.find(
      {Ipv4::from_octets(128, 125, 0, 8), net::Proto::kTcp, 22});
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->clients.size(), 0u);
  EXPECT_EQ(record->flows, 3u);

  // And it round-trips: the reloaded table saves to the same bytes.
  const std::string text = save_to_string(loaded.table);
  std::istringstream in(text);
  const auto again = load_table(in);
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(save_to_string(again.table), text);
}

TEST(TableIoProperty, BackwardsTimeRejectedAsMalformed) {
  // first_seen > last_activity was accepted silently, poisoning uptime
  // and lifetime analyses downstream.
  const auto loaded = load_table(corpus("backwards_time.tsv"));
  ASSERT_TRUE(loaded.ok);
  EXPECT_EQ(loaded.rows, 0u);
  EXPECT_EQ(loaded.malformed, 1u);
}

}  // namespace
}  // namespace svcdisc::passive
