// Tests for webcat::fetch_root_page against live hosts.
#include <gtest/gtest.h>

#include "host/host.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "webcat/categorizer.h"
#include "webcat/fetcher.h"

namespace svcdisc::webcat {
namespace {

using host::Host;
using host::LifecycleConfig;
using host::LifecycleKind;
using host::Service;
using host::WebContent;
using net::Ipv4;
using net::Prefix;

struct FetcherFixture : ::testing::Test {
  FetcherFixture()
      : network(sim, {Prefix(Ipv4::from_octets(128, 125, 0, 0), 16)}),
        host(1, network, nullptr, Ipv4::from_octets(128, 125, 1, 1),
             LifecycleConfig{LifecycleKind::kAlwaysOn, {}, {}, false},
             util::Rng(5)) {}

  sim::Simulator sim;
  sim::Network network;
  Host host;
};

TEST_F(FetcherFixture, FetchesLiveWebService) {
  Service web;
  web.proto = net::Proto::kTcp;
  web.port = 80;
  web.web = WebContent::kDefault;
  host.add_service(web);
  host.start();
  const std::string page = fetch_root_page(&host, sim.now());
  ASSERT_FALSE(page.empty());
  EXPECT_EQ(Categorizer().categorize(page), WebContent::kDefault);
}

TEST_F(FetcherFixture, NullHostIsNoResponse) {
  EXPECT_TRUE(fetch_root_page(nullptr, sim.now()).empty());
}

TEST_F(FetcherFixture, OfflineHostIsNoResponse) {
  Service web;
  web.proto = net::Proto::kTcp;
  web.port = 80;
  web.web = WebContent::kCustom;
  host.add_service(web);
  // Never started: offline.
  EXPECT_TRUE(fetch_root_page(&host, sim.now()).empty());
}

TEST_F(FetcherFixture, NonWebHostIsNoResponse) {
  Service ssh;
  ssh.proto = net::Proto::kTcp;
  ssh.port = 22;
  host.add_service(ssh);
  host.start();
  EXPECT_TRUE(fetch_root_page(&host, sim.now()).empty());
}

TEST_F(FetcherFixture, DeadServiceIsNoResponse) {
  Service web;
  web.proto = net::Proto::kTcp;
  web.port = 80;
  web.web = WebContent::kCustom;
  web.death = util::kEpoch + util::hours(1);
  host.add_service(web);
  host.start();
  EXPECT_FALSE(fetch_root_page(&host, sim.now()).empty());
  sim.run_until(util::kEpoch + util::hours(2));
  EXPECT_TRUE(fetch_root_page(&host, sim.now()).empty());
}

TEST_F(FetcherFixture, PageStableForSameHost) {
  Service web;
  web.proto = net::Proto::kTcp;
  web.port = 80;
  web.web = WebContent::kConfigStatus;
  host.add_service(web);
  host.start();
  EXPECT_EQ(fetch_root_page(&host, sim.now()),
            fetch_root_page(&host, sim.now()));
}

}  // namespace
}  // namespace svcdisc::webcat
