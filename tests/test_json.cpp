// util::parse_json — the strict RFC 8259 reader behind scenario packs.
#include <gtest/gtest.h>

#include <string>

#include "util/json.h"

namespace svcdisc::util {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null")->is_null());
  EXPECT_TRUE(parse_json("true")->as_bool());
  EXPECT_FALSE(parse_json("false")->as_bool());
  EXPECT_DOUBLE_EQ(parse_json("-2.5e2")->as_number(), -250.0);
  EXPECT_EQ(parse_json("\"hi\"")->as_string(), "hi");
}

TEST(Json, IntegerLiteralsKeepExactValue) {
  const auto v = parse_json("9007199254740993");  // 2^53 + 1
  ASSERT_TRUE(v && v->is_integer());
  EXPECT_EQ(v->as_integer(), 9007199254740993LL);
  // A fraction or exponent is not an integer literal.
  EXPECT_FALSE(parse_json("1.0")->is_integer());
  EXPECT_FALSE(parse_json("1e3")->is_integer());
}

TEST(Json, ObjectPreservesKeyOrderAndFindsKeys) {
  const auto v = parse_json(R"({"z": 1, "a": 2, "m": [3, 4]})");
  ASSERT_TRUE(v && v->is_object());
  ASSERT_EQ(v->members().size(), 3u);
  EXPECT_EQ(v->members()[0].first, "z");
  EXPECT_EQ(v->members()[1].first, "a");
  EXPECT_EQ(v->members()[2].first, "m");
  ASSERT_NE(v->find("m"), nullptr);
  EXPECT_EQ(v->find("m")->items().size(), 2u);
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\n\t")")->as_string(), "a\"b\\c\n\t");
  EXPECT_EQ(parse_json(R"("Aé")")->as_string(), "A\xc3\xa9");
  // Surrogate pair → one astral code point (UTF-8: f0 9f 98 80).
  EXPECT_EQ(parse_json(R"("😀")")->as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedInputWithPosition) {
  std::string error;
  EXPECT_FALSE(parse_json("{\"a\": 1,}", &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_FALSE(parse_json("{\n  \"a\": bogus\n}", &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_FALSE(parse_json("", &error));
  EXPECT_FALSE(parse_json("01", &error));       // leading zero
  EXPECT_FALSE(parse_json("1 2", &error));      // trailing garbage
  EXPECT_FALSE(parse_json("\"abc", &error));    // unterminated string
  EXPECT_FALSE(parse_json("{\"a\" 1}", &error));  // missing colon
}

TEST(Json, TruncatedDocumentFails) {
  std::string error;
  EXPECT_FALSE(parse_json(R"({"name": "x", "campus": {"dur)", &error));
  EXPECT_FALSE(error.empty());
}

TEST(Json, DepthGuardStopsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < kMaxJsonDepth + 8; ++i) deep += '[';
  std::string error;
  EXPECT_FALSE(parse_json(deep, &error));
  EXPECT_NE(error.find("too deep"), std::string::npos) << error;
  // Exactly at the limit is fine.
  std::string ok;
  for (int i = 0; i < kMaxJsonDepth; ++i) ok += '[';
  for (int i = 0; i < kMaxJsonDepth; ++i) ok += ']';
  EXPECT_TRUE(parse_json(ok, &error)) << error;
}

}  // namespace
}  // namespace svcdisc::util
