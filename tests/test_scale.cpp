// Scale-universe suite (`ctest -L scale`, DESIGN.md §14): the
// internet-scale address layer must (a) compute stateless per-address
// profiles that track the configured fractions, (b) answer probes and
// contacts exactly the way a default Host would, (c) materialize state
// only for contacted addresses, and (d) carry a million-address
// campaign with bounded RSS and byte-identical artifacts across shard
// counts. The expensive million-address campaign is shared across all
// its assertions, so this binary is registered as a single ctest entry
// (like test_calibration), not through gtest_discover_tests.
//
// SVCDISC_SCALE_SMOKE=1 shrinks the big campaign to one /16 block —
// scripts/sanitize.sh sets it so the ASan pass stays fast.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__)
#include <sys/resource.h>
#endif

#if defined(__SANITIZE_ADDRESS__)
#define SVCDISC_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SVCDISC_ASAN 1
#endif
#endif

#include "analysis/export.h"
#include "core/campaign_runner.h"
#include "core/engine.h"
#include "host/universe.h"
#include "net/packet.h"
#include "passive/table_io.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "workload/campus.h"

namespace svcdisc {
namespace {

using net::Ipv4;
using net::Packet;
using net::Prefix;

bool scale_smoke() {
  const char* env = std::getenv("SVCDISC_SCALE_SMOKE");
  return env && *env && std::strcmp(env, "0") != 0;
}

// ---------------------------------------------------------------------
// ScaleUniverse unit coverage: profiles and reply semantics.

class Recorder final : public sim::PacketSink {
 public:
  void on_packet(const Packet& p) override { received.push_back(p); }
  std::vector<Packet> received;
};

struct UniverseFixture : ::testing::Test {
  static constexpr auto kBlock = [] {
    return Prefix(Ipv4::from_octets(11, 0, 0, 0), 16);
  };

  UniverseFixture() : network(sim, {kBlock()}) {
    host::ScaleUniverseConfig cfg;
    cfg.blocks = {kBlock()};
    cfg.seed = 0x5CA1EULL;
    universe = std::make_unique<host::ScaleUniverse>(network, cfg);
    network.attach(client, &recorder);
  }

  /// Sends `p` and returns the reply it elicited, if any.
  const Packet* exchange(const Packet& p) {
    const std::size_t before = recorder.received.size();
    network.send(p);
    sim.run();
    if (recorder.received.size() == before) return nullptr;
    EXPECT_EQ(recorder.received.size(), before + 1);
    return &recorder.received.back();
  }

  /// First universe address whose profile satisfies `pred`.
  template <typename Pred>
  Ipv4 find_addr(Pred pred) {
    for (const Ipv4 addr : kBlock()) {
      if (pred(universe->profile(addr))) return addr;
    }
    ADD_FAILURE() << "no address matches predicate";
    return Ipv4(0);
  }

  sim::Simulator sim;
  sim::Network network;
  std::unique_ptr<host::ScaleUniverse> universe;
  const Ipv4 client = Ipv4::from_octets(66, 1, 1, 1);
  Recorder recorder;
};

TEST_F(UniverseFixture, ProfilesTrackConfiguredFractions) {
  std::size_t live = 0, service = 0, echo = 0;
  for (const Ipv4 addr : kBlock()) {
    const auto prof = universe->profile(addr);
    live += prof.live;
    service += prof.service;
    echo += prof.icmp_echo;
    if (prof.service) {
      EXPECT_TRUE(prof.port == net::Port{80} || prof.port == net::Port{22} ||
                  prof.port == net::Port{443})
          << "service port " << prof.port;
    } else {
      EXPECT_EQ(prof.port, net::Port{0});
    }
    if (!prof.live) {
      EXPECT_FALSE(prof.service);
      EXPECT_FALSE(prof.icmp_echo);
    }
  }
  const double n = static_cast<double>(kBlock().size());
  EXPECT_NEAR(static_cast<double>(live) / n, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(service) / static_cast<double>(live), 0.02,
              0.005);
  EXPECT_NEAR(static_cast<double>(echo) / static_cast<double>(live), 0.8,
              0.02);
  // Probing the whole block consumed no state: profiles are pure.
  EXPECT_EQ(universe->materialized_count(), 0u);
}

TEST_F(UniverseFixture, ProfilesAreDeterministicPerSeed) {
  host::ScaleUniverseConfig cfg;
  cfg.blocks = {kBlock()};
  cfg.seed = 0x5CA1EULL;
  sim::Simulator other_sim;
  sim::Network other_net(other_sim, {kBlock()});
  host::ScaleUniverse twin(other_net, cfg);
  cfg.seed = 0xD1FFULL;
  sim::Simulator reseeded_sim;
  sim::Network reseeded_net(reseeded_sim, {kBlock()});
  host::ScaleUniverse reseeded(reseeded_net, cfg);

  std::size_t differing = 0;
  for (std::uint32_t i = 0; i < 4096; ++i) {
    const Ipv4 addr(kBlock().base().value() + i * 16);
    const auto a = universe->profile(addr);
    const auto b = twin.profile(addr);
    EXPECT_EQ(a.live, b.live);
    EXPECT_EQ(a.service, b.service);
    EXPECT_EQ(a.icmp_echo, b.icmp_echo);
    EXPECT_EQ(a.port, b.port);
    const auto c = reseeded.profile(addr);
    differing += a.live != c.live || a.service != c.service;
  }
  EXPECT_GT(differing, 0u) << "different seed produced identical universe";
}

TEST_F(UniverseFixture, ReplySemanticsMirrorHostDefaults) {
  const Ipv4 service_addr =
      find_addr([](const host::ScaleProfile& p) { return p.service; });
  const net::Port open_port = universe->profile(service_addr).port;
  const Ipv4 live_addr = find_addr(
      [](const host::ScaleProfile& p) { return p.live && !p.service; });
  const Ipv4 dark_addr =
      find_addr([](const host::ScaleProfile& p) { return !p.live; });
  const Ipv4 echo_addr = find_addr(
      [](const host::ScaleProfile& p) { return p.live && p.icmp_echo; });
  const Ipv4 deaf_addr = find_addr(
      [](const host::ScaleProfile& p) { return p.live && !p.icmp_echo; });

  // SYN to the listening port: SYN-ACK acknowledging our sequence.
  Packet syn = net::make_tcp(client, net::Port{31000}, service_addr,
                             open_port, net::flags_syn());
  syn.seq = 41;
  const Packet* reply = exchange(syn);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->proto, net::Proto::kTcp);
  EXPECT_TRUE(reply->flags.is_syn_ack());
  EXPECT_EQ(reply->ack_no, 42u);
  EXPECT_EQ(reply->src, service_addr);
  EXPECT_EQ(reply->sport, open_port);

  // SYN to a closed port of a live machine: RST. (Port 3306 is in the
  // campus scan list but never in a universe profile.)
  reply = exchange(net::make_tcp(client, net::Port{31000}, live_addr,
                                 net::Port{3306}, net::flags_syn()));
  ASSERT_NE(reply, nullptr);
  EXPECT_TRUE(reply->flags.rst());

  // Dark address, and non-SYN segments anywhere: silence.
  EXPECT_EQ(exchange(net::make_tcp(client, net::Port{31000}, dark_addr,
                                   net::Port{80}, net::flags_syn())),
            nullptr);
  EXPECT_EQ(exchange(net::make_tcp(client, net::Port{31000}, service_addr,
                                   open_port, net::flags_ack())),
            nullptr);

  // UDP: live machines answer ICMP port-unreachable, dark ones nothing.
  reply = exchange(
      net::make_udp(client, net::Port{31000}, live_addr, net::Port{53}, 64));
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->proto, net::Proto::kIcmp);
  EXPECT_EQ(reply->icmp_type, net::IcmpType::kDestUnreachable);
  EXPECT_EQ(exchange(net::make_udp(client, net::Port{31000}, dark_addr,
                                   net::Port{53}, 64)),
            nullptr);

  // ICMP echo: only ping-visible live machines answer.
  Packet ping;
  ping.src = client;
  ping.dst = echo_addr;
  ping.proto = net::Proto::kIcmp;
  ping.icmp_type = net::IcmpType::kEchoRequest;
  reply = exchange(ping);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->icmp_type, net::IcmpType::kEchoReply);
  ping.dst = deaf_addr;
  EXPECT_EQ(exchange(ping), nullptr);
}

TEST_F(UniverseFixture, MaterializesOnlyContactedAddresses) {
  EXPECT_EQ(universe->materialized_count(), 0u);
  EXPECT_EQ(universe->memory_bytes(), 0u);
  constexpr std::uint32_t kContacted = 100;
  for (int round = 0; round < 3; ++round) {
    for (std::uint32_t i = 0; i < kContacted; ++i) {
      network.send(net::make_tcp(client, net::Port{31000},
                                 Ipv4(kBlock().base().value() + i * 7),
                                 net::Port{80}, net::flags_syn()));
    }
    sim.run();
    // Repeat contacts reuse their slot; the SoA grows with *distinct*
    // contacted addresses only.
    EXPECT_EQ(universe->materialized_count(), kContacted);
  }
  EXPECT_LT(universe->memory_bytes(), kContacted * 64u);
  EXPECT_GT(universe->replies_sent(), 0u);
}

// ---------------------------------------------------------------------
// Campus integration: a contacts-only universe stays lazy end to end.

TEST(ScaleCampus, ContactsOnlyMaterializeContactedAddresses) {
  auto cfg = workload::CampusConfig::tiny();
  cfg.duration = util::seconds_f(0.25 * 86400.0);
  cfg.scale_blocks = 4;
  cfg.scale_block_bits = 20;  // 4 x 4096 addresses
  cfg.scale_scan = false;     // nothing probes the universe
  cfg.scale_oneshot_contacts = 64;
  workload::Campus campus(cfg);
  ASSERT_NE(campus.universe(), nullptr);
  EXPECT_EQ(campus.universe()->universe_size(), 4u * 4096u);
  campus.start();
  campus.simulator().run_until(util::kEpoch + cfg.duration);

  const auto& u = *campus.universe();
  // Only the contacted service addresses exist; the other ~16k never
  // cost a byte.
  EXPECT_GT(u.materialized_count(), 0u);
  EXPECT_LE(u.materialized_count(), 64u);
  EXPECT_GT(u.replies_sent(), 0u);
  EXPECT_LT(u.memory_bytes(), 16u * 1024u);
}

// ---------------------------------------------------------------------
// The million-address campaign: bounded memory, shard-identical bytes.

struct ScaleRun {
  std::string passive_table;
  std::string active_table;
  std::string metrics;
  std::string provenance;
  util::MetricsSnapshot snapshot;
  std::string error;
};

ScaleRun run_scale_campaign(const workload::CampusConfig& campus_cfg,
                            std::size_t threads) {
  core::CampaignJob job;
  job.campus_cfg = campus_cfg;
  job.engine_cfg.scan_count = 1;
  job.engine_cfg.threads = threads;
  job.seed = 1;
  job.label = "scale";
  job.provenance = true;
  std::vector<core::CampaignJob> jobs;
  jobs.push_back(std::move(job));
  auto results = core::CampaignRunner(1).run(std::move(jobs));
  core::CampaignResult& r = results.at(0);
  ScaleRun out;
  if (!r.ok()) {
    out.error = r.error;
    return out;
  }
  {
    std::ostringstream s;
    passive::save_table(r.engine->monitor().table(), s);
    out.passive_table = s.str();
  }
  {
    std::ostringstream s;
    passive::save_table(r.engine->prober().table(), s);
    out.active_table = s.str();
  }
  {
    analysis::MetricsExport e;
    e.label = r.label;
    e.seed = r.seed;
    e.snapshot = &r.snapshot;
    out.metrics = analysis::metrics_to_json({e});
  }
  out.provenance = r.provenance->to_jsonl();
  out.snapshot = std::move(r.snapshot);
  return out;
}

TEST(ScaleCampaign, MillionAddressesBoundedRssAndShardIdentical) {
  auto cfg = workload::CampusConfig::scale1m();
  if (scale_smoke()) cfg.scale_blocks = 1;  // one /16 under sanitizers
  const std::uint64_t expected_universe =
      std::uint64_t{cfg.scale_blocks} << (32 - cfg.scale_block_bits);

  const ScaleRun serial = run_scale_campaign(cfg, 1);
  ASSERT_TRUE(serial.error.empty()) << serial.error;

  // The universe gauges are part of the deterministic metrics export.
  EXPECT_EQ(serial.snapshot.value_of("scale.universe_addresses"),
            static_cast<double>(expected_universe));
  // A full-universe scan contacts every address, so the SoA reaches
  // universe size — at ~28 bytes per contacted address, not a Host each.
  EXPECT_EQ(serial.snapshot.value_of("scale.materialized_addresses"),
            static_cast<double>(expected_universe));
  EXPECT_GT(serial.snapshot.value_of("scale.replies_sent"), 0.0);
  EXPECT_LT(serial.snapshot.value_of("scale.universe_bytes"),
            64.0 * 1024 * 1024);

  // Passive discovery still works at scale: the one-shot contacts are
  // observable at the border taps.
  EXPECT_NE(serial.passive_table.find("tcp"), std::string::npos);

  // Sharded execution reproduces every artifact byte for byte.
  const ScaleRun sharded = run_scale_campaign(cfg, 2);
  ASSERT_TRUE(sharded.error.empty()) << sharded.error;
  EXPECT_EQ(serial.passive_table, sharded.passive_table);
  EXPECT_EQ(serial.active_table, sharded.active_table);
  EXPECT_EQ(serial.metrics, sharded.metrics);
  EXPECT_EQ(serial.provenance, sharded.provenance);

#if defined(__unix__) && !defined(SVCDISC_ASAN)
  // Peak RSS over the whole binary — including both full campaigns
  // above — must stay far below what a Host per address would cost
  // (shadow memory makes the figure meaningless under ASan).
  if (!scale_smoke()) {
    struct rusage usage {};
    ASSERT_EQ(getrusage(RUSAGE_SELF, &usage), 0);
    const long rss_mb = usage.ru_maxrss / 1024;  // ru_maxrss is KiB on Linux
    EXPECT_LT(rss_mb, 512) << "peak RSS " << rss_mb << " MiB";
  }
#endif
}

}  // namespace
}  // namespace svcdisc
