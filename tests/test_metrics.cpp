// Unit and thread-safety tests for util::MetricsRegistry.
//
// The thread tests hammer shared handles from many threads and assert
// *exact* totals — relaxed atomics lose no increments, they only relax
// inter-metric ordering. Run under TSan via scripts/sanitize.sh.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "util/metrics.h"

namespace svcdisc::util {
namespace {

TEST(Metrics, CounterStartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, GaugeSetAddUpdateMax) {
  Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-3);
  EXPECT_EQ(g.value(), 4);
  g.update_max(10);
  EXPECT_EQ(g.value(), 10);
  g.update_max(2);  // lower values never win
  EXPECT_EQ(g.value(), 10);
}

TEST(Metrics, HistogramBucketsAndOverflow) {
  Histogram h({1.0, 10.0, 100.0});
  h.record(0.5);    // bucket 0
  h.record(1.0);    // bucket 0 (inclusive upper bound)
  h.record(50.0);   // bucket 2
  h.record(1e6);    // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 50.0 + 1e6);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 0u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow bucket
}

TEST(Metrics, RegistryReturnsSameHandleForSameName) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x.count");
  Counter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(Metrics, SnapshotIsSortedByNameAndDetached) {
  MetricsRegistry registry;
  registry.counter("z.last").inc(3);
  registry.gauge("a.first").set(-2);
  registry.histogram("m.middle", {1.0}).record(0.5);
  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.values().size(), 3u);
  EXPECT_EQ(snapshot.values()[0].name, "a.first");
  EXPECT_EQ(snapshot.values()[1].name, "m.middle");
  EXPECT_EQ(snapshot.values()[2].name, "z.last");
  EXPECT_EQ(snapshot.value_of("z.last"), 3.0);
  EXPECT_EQ(snapshot.value_of("a.first"), -2.0);
  EXPECT_EQ(snapshot.value_of("absent", -1.0), -1.0);
  // Later mutation does not leak into the detached copy.
  registry.counter("z.last").inc(100);
  EXPECT_EQ(snapshot.value_of("z.last"), 3.0);
}

TEST(Metrics, SnapshotHistogramCarriesOverflowBucket) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("h", {1.0, 2.0});
  h.record(0.5);
  h.record(99.0);
  const MetricsSnapshot snapshot = registry.snapshot();
  const auto* v = snapshot.find("h");
  ASSERT_NE(v, nullptr);
  ASSERT_EQ(v->buckets.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(v->buckets[0].second, 1u);
  EXPECT_EQ(v->buckets[2].second, 1u);
  EXPECT_TRUE(std::isinf(v->buckets[2].first));
}

TEST(Metrics, SumMatchingAggregatesByPrefix) {
  MetricsRegistry registry;
  registry.counter("tap.a.packets_seen").inc(10);
  registry.counter("tap.b.packets_seen").inc(5);
  registry.counter("other").inc(100);
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.sum_matching("tap."), 15.0);
}

// N threads hammer the same counter/gauge/histogram handles; every
// increment must land (exact totals), and the high-water gauge must see
// the global maximum.
TEST(MetricsThreads, ConcurrentUpdatesKeepExactTotals) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIncsPerThread = 100000;

  MetricsRegistry registry;
  Counter& counter = registry.counter("hammer.count");
  Gauge& hwm = registry.gauge("hammer.hwm");
  Histogram& histogram = registry.histogram("hammer.hist", {0.5, 1.5, 2.5});

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kIncsPerThread; ++i) {
        counter.inc();
        hwm.update_max(static_cast<std::int64_t>(t * kIncsPerThread + i));
        histogram.record(static_cast<double>(t % 4));  // buckets 0..3
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(counter.value(), kThreads * kIncsPerThread);
  EXPECT_EQ(hwm.value(),
            static_cast<std::int64_t>(kThreads * kIncsPerThread - 1));
  EXPECT_EQ(histogram.count(), kThreads * kIncsPerThread);
  // 2 threads per residue class 0..3 recorded value == residue.
  const double expected_sum =
      2.0 * kIncsPerThread * (0.0 + 1.0 + 2.0 + 3.0);
  EXPECT_DOUBLE_EQ(histogram.sum(), expected_sum);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(histogram.bucket_count(b), 2 * kIncsPerThread);
  }
}

// Concurrent registration of overlapping names must hand every thread
// the same stable handle per name (and never invalidate old handles).
TEST(MetricsThreads, ConcurrentRegistrationIsSafe) {
  constexpr int kThreads = 8;
  constexpr int kNames = 32;
  constexpr std::uint64_t kRounds = 2000;

  MetricsRegistry registry;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t round = 0; round < kRounds; ++round) {
        const std::string name =
            "reg." + std::to_string(round % kNames);
        registry.counter(name).inc();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.values().size(), static_cast<std::size_t>(kNames));
  EXPECT_EQ(snapshot.sum_matching("reg."),
            static_cast<double>(kThreads) * kRounds);
}

}  // namespace
}  // namespace svcdisc::util
