// Unit and thread-safety tests for util::MetricsRegistry.
//
// The thread tests hammer shared handles from many threads and assert
// *exact* totals — relaxed atomics lose no increments, they only relax
// inter-metric ordering. Run under TSan via scripts/sanitize.sh.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "util/metrics.h"

namespace svcdisc::util {
namespace {

TEST(Metrics, CounterStartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, GaugeSetAddUpdateMax) {
  Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-3);
  EXPECT_EQ(g.value(), 4);
  g.update_max(10);
  EXPECT_EQ(g.value(), 10);
  g.update_max(2);  // lower values never win
  EXPECT_EQ(g.value(), 10);
}

TEST(Metrics, HistogramBucketsAndOverflow) {
  Histogram h({1.0, 10.0, 100.0});
  h.record(0.5);    // bucket 0
  h.record(1.0);    // bucket 0 (inclusive upper bound)
  h.record(50.0);   // bucket 2
  h.record(1e6);    // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 50.0 + 1e6);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 0u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow bucket
}

TEST(Metrics, RegistryReturnsSameHandleForSameName) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x.count");
  Counter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(Metrics, SnapshotIsSortedByNameAndDetached) {
  MetricsRegistry registry;
  registry.counter("z.last").inc(3);
  registry.gauge("a.first").set(-2);
  registry.histogram("m.middle", {1.0}).record(0.5);
  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.values().size(), 3u);
  EXPECT_EQ(snapshot.values()[0].name, "a.first");
  EXPECT_EQ(snapshot.values()[1].name, "m.middle");
  EXPECT_EQ(snapshot.values()[2].name, "z.last");
  EXPECT_EQ(snapshot.value_of("z.last"), 3.0);
  EXPECT_EQ(snapshot.value_of("a.first"), -2.0);
  EXPECT_EQ(snapshot.value_of("absent", -1.0), -1.0);
  // Later mutation does not leak into the detached copy.
  registry.counter("z.last").inc(100);
  EXPECT_EQ(snapshot.value_of("z.last"), 3.0);
}

TEST(Metrics, SnapshotHistogramCarriesOverflowBucket) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("h", {1.0, 2.0});
  h.record(0.5);
  h.record(99.0);
  const MetricsSnapshot snapshot = registry.snapshot();
  const auto* v = snapshot.find("h");
  ASSERT_NE(v, nullptr);
  ASSERT_EQ(v->buckets.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(v->buckets[0].second, 1u);
  EXPECT_EQ(v->buckets[2].second, 1u);
  EXPECT_TRUE(std::isinf(v->buckets[2].first));
}

TEST(Metrics, SumMatchingAggregatesByPrefix) {
  MetricsRegistry registry;
  registry.counter("tap.a.packets_seen").inc(10);
  registry.counter("tap.b.packets_seen").inc(5);
  registry.counter("other").inc(100);
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.sum_matching("tap."), 15.0);
}

TEST(Metrics, SnapshotLookupsOnEmptyAndNearMissNames) {
  const MetricsSnapshot empty;
  EXPECT_EQ(empty.find("anything"), nullptr);
  EXPECT_EQ(empty.value_of("anything", -7.0), -7.0);
  EXPECT_EQ(empty.sum_matching(""), 0.0);

  MetricsRegistry registry;
  registry.counter("scan").inc(1);
  registry.counter("scan.rounds").inc(2);
  registry.counter("scans").inc(4);
  const auto snapshot = registry.snapshot();
  // find() is exact-match only; a name that is a prefix of another must
  // not resolve to its longer sibling.
  ASSERT_NE(snapshot.find("scan"), nullptr);
  EXPECT_EQ(snapshot.find("scan")->value, 1.0);
  EXPECT_EQ(snapshot.find("scan.round"), nullptr);
  // sum_matching() is prefix-match: "scan" catches all three.
  EXPECT_EQ(snapshot.sum_matching("scan"), 7.0);
  EXPECT_EQ(snapshot.sum_matching("scan."), 2.0);
}

TEST(Metrics, QuantileInterpolatesWithinBuckets) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("q", {10.0, 20.0, 30.0});
  for (int i = 0; i < 5; ++i) h.record(5.0);   // bucket (0, 10]
  for (int i = 0; i < 5; ++i) h.record(15.0);  // bucket (10, 20]
  const auto snapshot = registry.snapshot();
  const auto* v = snapshot.find("q");
  ASSERT_NE(v, nullptr);
  // rank = q * 10 samples; uniform spread within each bucket.
  EXPECT_DOUBLE_EQ(v->quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(v->quantile(0.5), 10.0);   // exactly at the edge
  EXPECT_DOUBLE_EQ(v->quantile(0.9), 18.0);   // 4/5 into bucket 1
  EXPECT_DOUBLE_EQ(v->quantile(0.99), 19.8);
  EXPECT_DOUBLE_EQ(v->quantile(1.0), 20.0);
  // Out-of-range q clamps rather than extrapolating.
  EXPECT_DOUBLE_EQ(v->quantile(1.5), 20.0);
  EXPECT_DOUBLE_EQ(snapshot.quantile_of("q", 0.9), 18.0);
}

TEST(Metrics, QuantileClampsOverflowToLastFiniteBound) {
  MetricsRegistry registry;
  registry.histogram("over", {10.0, 20.0}).record(1e9);
  const auto snapshot = registry.snapshot();
  const auto* v = snapshot.find("over");
  ASSERT_NE(v, nullptr);
  // The overflow bucket has no upper edge to interpolate toward.
  EXPECT_DOUBLE_EQ(v->quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(v->quantile(0.99), 20.0);
}

TEST(Metrics, QuantileIsNaNForEmptyOrNonHistogram) {
  MetricsRegistry registry;
  registry.histogram("empty", {1.0});
  registry.counter("count").inc(5);
  const auto snapshot = registry.snapshot();
  EXPECT_TRUE(std::isnan(snapshot.find("empty")->quantile(0.5)));
  EXPECT_TRUE(std::isnan(snapshot.find("count")->quantile(0.5)));
  // quantile_of folds both cases into the fallback.
  EXPECT_EQ(snapshot.quantile_of("empty", 0.5, -1.0), -1.0);
  EXPECT_EQ(snapshot.quantile_of("count", 0.5, -1.0), -1.0);
  EXPECT_EQ(snapshot.quantile_of("absent", 0.5, -1.0), -1.0);
}

// N threads hammer the same counter/gauge/histogram handles; every
// increment must land (exact totals), and the high-water gauge must see
// the global maximum.
TEST(MetricsThreads, ConcurrentUpdatesKeepExactTotals) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIncsPerThread = 100000;

  MetricsRegistry registry;
  Counter& counter = registry.counter("hammer.count");
  Gauge& hwm = registry.gauge("hammer.hwm");
  Histogram& histogram = registry.histogram("hammer.hist", {0.5, 1.5, 2.5});

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kIncsPerThread; ++i) {
        counter.inc();
        hwm.update_max(static_cast<std::int64_t>(t * kIncsPerThread + i));
        histogram.record(static_cast<double>(t % 4));  // buckets 0..3
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(counter.value(), kThreads * kIncsPerThread);
  EXPECT_EQ(hwm.value(),
            static_cast<std::int64_t>(kThreads * kIncsPerThread - 1));
  EXPECT_EQ(histogram.count(), kThreads * kIncsPerThread);
  // 2 threads per residue class 0..3 recorded value == residue.
  const double expected_sum =
      2.0 * kIncsPerThread * (0.0 + 1.0 + 2.0 + 3.0);
  EXPECT_DOUBLE_EQ(histogram.sum(), expected_sum);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(histogram.bucket_count(b), 2 * kIncsPerThread);
  }
}

// Concurrent registration of overlapping names must hand every thread
// the same stable handle per name (and never invalidate old handles).
TEST(MetricsThreads, ConcurrentRegistrationIsSafe) {
  constexpr int kThreads = 8;
  constexpr int kNames = 32;
  constexpr std::uint64_t kRounds = 2000;

  MetricsRegistry registry;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t round = 0; round < kRounds; ++round) {
        const std::string name =
            "reg." + std::to_string(round % kNames);
        registry.counter(name).inc();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.values().size(), static_cast<std::size_t>(kNames));
  EXPECT_EQ(snapshot.sum_matching("reg."),
            static_cast<double>(kThreads) * kRounds);
}

}  // namespace
}  // namespace svcdisc::util
