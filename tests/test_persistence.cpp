// Tests for ServiceTable persistence (passive/table_io) and the scan
// report formatter (active/scan_report).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "active/scan_report.h"
#include "passive/table_io.h"

namespace svcdisc {
namespace {

using net::Ipv4;
using passive::ServiceKey;
using passive::ServiceTable;
using util::hours;
using util::kEpoch;

ServiceKey key(int i, net::Port port = 80,
               net::Proto proto = net::Proto::kTcp) {
  return {Ipv4::from_octets(128, 125, static_cast<std::uint8_t>(i / 256),
                            static_cast<std::uint8_t>(i % 256)),
          proto, port};
}

TEST(TableIo, RoundTripPreservesEverythingObservable) {
  ServiceTable table;
  table.discover(key(1), kEpoch + hours(2));
  table.count_flow(key(1), Ipv4::from_octets(66, 1, 1, 1), kEpoch + hours(3));
  table.count_flow(key(1), Ipv4::from_octets(66, 1, 1, 2), kEpoch + hours(9));
  table.discover(key(2, 53, net::Proto::kUdp), kEpoch + hours(5));
  table.discover(key(3, 22), kEpoch + hours(1));

  const std::string path = ::testing::TempDir() + "/svcdisc_table.tsv";
  ASSERT_TRUE(passive::save_table(table, path));
  const auto loaded = passive::load_table(path);
  ASSERT_TRUE(loaded.ok);
  EXPECT_EQ(loaded.rows, 3u);
  EXPECT_EQ(loaded.malformed, 0u);
  EXPECT_EQ(loaded.table.size(), 3u);

  const auto* record = loaded.table.find(key(1));
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->first_seen, kEpoch + hours(2));
  EXPECT_EQ(record->last_activity, kEpoch + hours(9));
  EXPECT_EQ(record->flows, 2u);
  EXPECT_EQ(record->clients.size(), 2u);
  EXPECT_TRUE(loaded.table.contains(key(2, 53, net::Proto::kUdp)));
  std::remove(path.c_str());
}

TEST(TableIo, ChronologicalOrderStable) {
  ServiceTable table;
  table.discover(key(5), kEpoch + hours(5));
  table.discover(key(4), kEpoch + hours(1));
  const std::string path = ::testing::TempDir() + "/svcdisc_order.tsv";
  ASSERT_TRUE(passive::save_table(table, path));
  std::ifstream in(path);
  std::string header, first;
  std::getline(in, header);
  std::getline(in, first);
  EXPECT_NE(first.find("128.125.0.4"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TableIo, MalformedRowsCountedNotFatal) {
  const std::string path = ::testing::TempDir() + "/svcdisc_bad.tsv";
  {
    std::ofstream out(path);
    out << "# header\n";
    out << "128.125.0.1\ttcp\t80\t100\t200\t3\t2\n";
    out << "not-an-addr\ttcp\t80\t100\t200\t3\t2\n";
    out << "128.125.0.2\ttcp\t99999\t100\t200\t3\t2\n";  // bad port
    out << "128.125.0.3\ttcp\t80\t100\n";                // short row
    out << "128.125.0.4\ticmp\t0\t100\t200\t3\t2\n";     // valid: icmp rows
                                                         // reload since the
                                                         // save/load asymmetry
                                                         // fix
    out << "128.125.0.5\tsctp\t80\t100\t200\t3\t2\n";    // unknown proto
    out << "128.125.0.6\ttcp\t80\t300\t200\t3\t2\n";     // first_seen after
                                                         // last_activity
  }
  const auto loaded = passive::load_table(path);
  ASSERT_TRUE(loaded.ok);
  EXPECT_EQ(loaded.rows, 2u);
  EXPECT_EQ(loaded.malformed, 5u);
  EXPECT_EQ(loaded.clamped, 0u);
  EXPECT_TRUE(loaded.table.contains(
      {Ipv4::from_octets(128, 125, 0, 4), net::Proto::kIcmp, 0}));
  std::remove(path.c_str());
}

TEST(TableIo, MissingFileReportsFailure) {
  const auto loaded = passive::load_table("/nonexistent/table.tsv");
  EXPECT_FALSE(loaded.ok);
}

// ------------------------------------------------------------- diff --

TEST(TableDiff, DetectsAppearedAndDisappeared) {
  ServiceTable before, after;
  before.discover(key(1), kEpoch);            // survives
  before.discover(key(2), kEpoch);            // disappears
  after.discover(key(1), kEpoch + hours(1));
  after.discover(key(3), kEpoch + hours(2));  // appears
  after.discover(key(3, 22), kEpoch + hours(2));

  const auto diff = passive::diff_tables(before, after);
  EXPECT_EQ(diff.unchanged, 1u);
  ASSERT_EQ(diff.appeared.size(), 2u);
  EXPECT_EQ(diff.appeared[0].port, 22);  // sorted by addr then port
  EXPECT_EQ(diff.appeared[1].port, 80);
  ASSERT_EQ(diff.disappeared.size(), 1u);
  EXPECT_EQ(diff.disappeared[0].addr, key(2).addr);
}

TEST(TableDiff, IdenticalTablesEmptyDiff) {
  ServiceTable t;
  t.discover(key(1), kEpoch);
  const auto diff = passive::diff_tables(t, t);
  EXPECT_TRUE(diff.appeared.empty());
  EXPECT_TRUE(diff.disappeared.empty());
  EXPECT_EQ(diff.unchanged, 1u);
}

TEST(TableDiff, PortGranularity) {
  // Same address, new port: appears, does not count as unchanged.
  ServiceTable before, after;
  before.discover(key(1, 80), kEpoch);
  after.discover(key(1, 80), kEpoch);
  after.discover(key(1, 443), kEpoch);
  const auto diff = passive::diff_tables(before, after);
  EXPECT_EQ(diff.unchanged, 1u);
  ASSERT_EQ(diff.appeared.size(), 1u);
  EXPECT_EQ(diff.appeared[0].port, 443);
}

// -------------------------------------------------------- scan report --

active::ScanRecord sample_record() {
  using active::ProbeOutcome;
  using active::ProbeStatus;
  active::ScanRecord record;
  record.index = 3;
  record.started = kEpoch + hours(1);
  record.finished = kEpoch + hours(2);
  record.outcomes = {
      {{Ipv4::from_octets(128, 125, 1, 1), net::Proto::kTcp, 22},
       ProbeStatus::kOpen, kEpoch + hours(1)},
      {{Ipv4::from_octets(128, 125, 1, 1), net::Proto::kTcp, 80},
       ProbeStatus::kClosed, kEpoch + hours(1)},
      {{Ipv4::from_octets(128, 125, 1, 2), net::Proto::kTcp, 22},
       ProbeStatus::kFiltered, kEpoch + hours(1)},
      {{Ipv4::from_octets(128, 125, 1, 3), net::Proto::kUdp, 53},
       ProbeStatus::kOpenUdp, kEpoch + hours(1)},
  };
  return record;
}

TEST(ScanReport, ListsOpenPortsPerHost) {
  const util::Calendar cal;
  const std::string report =
      active::format_scan_report(sample_record(), cal);
  EXPECT_NE(report.find("scan #3"), std::string::npos);
  EXPECT_NE(report.find("host 128.125.1.1"), std::string::npos);
  EXPECT_NE(report.find("22/tcp open ssh"), std::string::npos);
  EXPECT_NE(report.find("53/udp open dns"), std::string::npos);
  // Closed ports summarized, not listed, by default.
  EXPECT_EQ(report.find("80/tcp closed"), std::string::npos);
  // Host with only filtered ports is not an open host.
  EXPECT_EQ(report.find("host 128.125.1.2"), std::string::npos);
  EXPECT_NE(report.find("2 hosts with open services"), std::string::npos);
}

TEST(ScanReport, ShowClosedOption) {
  const util::Calendar cal;
  active::ReportOptions options;
  options.show_closed = true;
  const std::string report =
      active::format_scan_report(sample_record(), cal, options);
  EXPECT_NE(report.find("80/tcp closed"), std::string::npos);
}

TEST(ScanReport, MaxHostsTruncates) {
  const util::Calendar cal;
  active::ReportOptions options;
  options.max_hosts = 1;
  const std::string report =
      active::format_scan_report(sample_record(), cal, options);
  EXPECT_NE(report.find("(1 more hosts with open ports)"),
            std::string::npos);
}

}  // namespace
}  // namespace svcdisc
