// Unit tests for util::Flags (the tools' command-line parser).
#include <gtest/gtest.h>

#include "util/flags.h"

namespace svcdisc::util {
namespace {

TEST(Flags, DefaultsSurviveEmptyArgv) {
  std::string s = "preset";
  std::int64_t n = 42;
  double d = 1.5;
  bool b = false;
  Flags flags("test", "t");
  flags.add_string("s", "", &s);
  flags.add_int64("n", "", &n);
  flags.add_double("d", "", &d);
  flags.add_bool("b", "", &b);
  const char* argv[] = {"test"};
  EXPECT_TRUE(flags.parse(1, argv));
  EXPECT_EQ(s, "preset");
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(d, 1.5);
  EXPECT_FALSE(b);
}

TEST(Flags, EqualsAndSpaceForms) {
  std::string s;
  std::int64_t n = 0;
  Flags flags("test", "t");
  flags.add_string("s", "", &s);
  flags.add_int64("n", "", &n);
  const char* argv[] = {"test", "--s=hello", "--n", "7"};
  EXPECT_TRUE(flags.parse(4, argv));
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(n, 7);
}

TEST(Flags, BoolForms) {
  bool a = false, b = true, c = false;
  Flags flags("test", "t");
  flags.add_bool("a", "", &a);
  flags.add_bool("b", "", &b);
  flags.add_bool("c", "", &c);
  const char* argv[] = {"test", "--a", "--b=false", "--c=yes"};
  EXPECT_TRUE(flags.parse(4, argv));
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);
  EXPECT_TRUE(c);
}

TEST(Flags, NegativeAndDoubleValues) {
  std::int64_t n = 0;
  double d = 0;
  Flags flags("test", "t");
  flags.add_int64("n", "", &n);
  flags.add_double("d", "", &d);
  const char* argv[] = {"test", "--n=-12", "--d=-0.25"};
  EXPECT_TRUE(flags.parse(3, argv));
  EXPECT_EQ(n, -12);
  EXPECT_DOUBLE_EQ(d, -0.25);
}

TEST(Flags, PositionalCollected) {
  Flags flags("test", "t");
  std::int64_t n = 0;
  flags.add_int64("n", "", &n);
  const char* argv[] = {"test", "first", "--n=1", "second"};
  EXPECT_TRUE(flags.parse(4, argv));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "first");
  EXPECT_EQ(flags.positional()[1], "second");
}

TEST(Flags, Errors) {
  std::int64_t n = 0;
  bool b = false;
  Flags flags("test", "t");
  flags.add_int64("n", "", &n);
  flags.add_bool("b", "", &b);
  {
    const char* argv[] = {"test", "--missing"};
    EXPECT_FALSE(flags.parse(2, argv));
    EXPECT_NE(flags.error().find("unknown flag"), std::string::npos);
  }
  {
    Flags f2("test", "t");
    f2.add_int64("n", "", &n);
    const char* argv[] = {"test", "--n=abc"};
    EXPECT_FALSE(f2.parse(2, argv));
    EXPECT_NE(f2.error().find("invalid integer"), std::string::npos);
  }
  {
    Flags f3("test", "t");
    f3.add_int64("n", "", &n);
    const char* argv[] = {"test", "--n"};
    EXPECT_FALSE(f3.parse(2, argv));
    EXPECT_NE(f3.error().find("missing value"), std::string::npos);
  }
  {
    Flags f4("test", "t");
    f4.add_bool("b", "", &b);
    const char* argv[] = {"test", "--b=maybe"};
    EXPECT_FALSE(f4.parse(2, argv));
    EXPECT_NE(f4.error().find("invalid boolean"), std::string::npos);
  }
}

TEST(Flags, HelpRequested) {
  Flags flags("test", "t");
  const char* argv[] = {"test", "--help"};
  EXPECT_FALSE(flags.parse(2, argv));
  EXPECT_TRUE(flags.help_requested());
  EXPECT_TRUE(flags.error().empty());
}

TEST(Flags, UsageListsFlagsAndDefaults) {
  std::string s = "xyz";
  Flags flags("prog", "does things");
  flags.add_string("scenario", "which scenario", &s);
  const std::string usage = flags.usage();
  EXPECT_NE(usage.find("prog"), std::string::npos);
  EXPECT_NE(usage.find("--scenario"), std::string::npos);
  EXPECT_NE(usage.find("xyz"), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

}  // namespace
}  // namespace svcdisc::util
