// Budgeted adaptive prober (DESIGN.md §16): learned priors, budget
// draining, LZR-style SYN-ACK verification, passive seeding, and the
// campaign-level contracts — middlebox deflation, budget efficiency, and
// thread-count determinism (`ctest -L adaptive`).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "active/adaptive_prober.h"
#include "active/priors.h"
#include "active/prober.h"
#include "core/engine.h"
#include "core/scenario.h"
#include "host/host.h"
#include "net/packet.h"
#include "passive/service_table.h"
#include "passive/table_io.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "workload/campus.h"

namespace svcdisc::active {
namespace {

using host::Host;
using host::LifecycleConfig;
using host::LifecycleKind;
using host::Service;
using host::SynPolicy;
using net::Ipv4;
using net::Prefix;
using net::Proto;

// ------------------------------------------------------------ ScanPriors --

TEST(ScanPriors, UntrainedScoresAreTheLaplacePrior) {
  ScanPriors priors;
  const Ipv4 addr = Ipv4::from_octets(128, 125, 1, 1);
  EXPECT_DOUBLE_EQ(priors.port_popularity(80, Proto::kTcp), 0.5);
  EXPECT_DOUBLE_EQ(priors.subnet_affinity(addr, 80, Proto::kTcp), 0.5);
  EXPECT_DOUBLE_EQ(priors.conditional(addr, 80, Proto::kTcp), 0.0);
  EXPECT_DOUBLE_EQ(priors.score(addr, 80, Proto::kTcp), 0.5);
  EXPECT_DOUBLE_EQ(priors.entropy(), 0.0);
}

TEST(ScanPriors, PortPopularityTracksOutcomes) {
  ScanPriors priors;
  for (int i = 0; i < 20; ++i) {
    const Ipv4 addr = Ipv4::from_octets(128, 125, 1,
                                        static_cast<std::uint8_t>(i + 1));
    priors.record(addr, 80, Proto::kTcp, /*open=*/true);
    priors.record(addr, 23, Proto::kTcp, /*open=*/false);
  }
  EXPECT_GT(priors.port_popularity(80, Proto::kTcp), 0.9);
  EXPECT_LT(priors.port_popularity(23, Proto::kTcp), 0.1);
  EXPECT_EQ(priors.probes_recorded(), 40u);
  EXPECT_EQ(priors.opens_recorded(), 20u);
}

TEST(ScanPriors, SubnetAffinityShrinksTowardGlobalPopularity) {
  ScanPriors priors(/*subnet_shrinkage=*/8.0);
  // Port 80 opens half the time globally: hot /24 (all open), cold /24
  // (all closed), and a third subnet never probed at all.
  for (int i = 0; i < 16; ++i) {
    priors.record(Ipv4::from_octets(128, 125, 1,
                                    static_cast<std::uint8_t>(i + 1)),
                  80, Proto::kTcp, true);
    priors.record(Ipv4::from_octets(128, 125, 2,
                                    static_cast<std::uint8_t>(i + 1)),
                  80, Proto::kTcp, false);
  }
  const double global = priors.port_popularity(80, Proto::kTcp);
  const double hot =
      priors.subnet_affinity(Ipv4::from_octets(128, 125, 1, 99), 80,
                             Proto::kTcp);
  const double cold =
      priors.subnet_affinity(Ipv4::from_octets(128, 125, 2, 99), 80,
                             Proto::kTcp);
  const double fresh =
      priors.subnet_affinity(Ipv4::from_octets(128, 125, 3, 99), 80,
                             Proto::kTcp);
  EXPECT_GT(hot, global);
  EXPECT_LT(cold, global);
  // An unprobed subnet scores exactly the global prior: exploration.
  EXPECT_DOUBLE_EQ(fresh, global);
}

TEST(ScanPriors, CrossPortConditionalLiftsCoResidentServices) {
  ScanPriors priors;
  // Hosts running SSH overwhelmingly also run HTTP.
  for (int i = 0; i < 12; ++i) {
    const Ipv4 addr = Ipv4::from_octets(128, 125, 4,
                                        static_cast<std::uint8_t>(i + 1));
    priors.record(addr, 22, Proto::kTcp, true);
    priors.record(addr, 80, Proto::kTcp, true);
  }
  const Ipv4 ssh_host = Ipv4::from_octets(128, 125, 4, 1);
  const Ipv4 unknown = Ipv4::from_octets(128, 125, 9, 1);
  EXPECT_GT(priors.conditional(ssh_host, 80, Proto::kTcp), 0.9);
  EXPECT_DOUBLE_EQ(priors.conditional(unknown, 80, Proto::kTcp), 0.0);
  EXPECT_GT(priors.score(ssh_host, 80, Proto::kTcp),
            priors.score(unknown, 80, Proto::kTcp));
}

TEST(ScanPriors, EntropyMeasuresOpenPortConcentration) {
  ScanPriors one;
  ScanPriors two;
  for (int i = 0; i < 10; ++i) {
    const Ipv4 addr = Ipv4::from_octets(128, 125, 5,
                                        static_cast<std::uint8_t>(i + 1));
    one.record(addr, 80, Proto::kTcp, true);
    two.record(addr, 80, Proto::kTcp, true);
    two.record(addr, 22, Proto::kTcp, true);
  }
  EXPECT_DOUBLE_EQ(one.entropy(), 0.0);  // all mass on one port
  EXPECT_NEAR(two.entropy(), std::log(2.0), 1e-9);
}

// --------------------------------------------------------- AdaptiveProber --

struct World {
  World()
      : network(sim, {Prefix(Ipv4::from_octets(128, 125, 0, 0), 16),
                      Prefix(Ipv4::from_octets(10, 1, 0, 0), 24)}) {}

  Host& add_host(Ipv4 addr) {
    const host::HostId id = next_id++;
    hosts.push_back(std::make_unique<Host>(
        id, network, nullptr, addr,
        LifecycleConfig{LifecycleKind::kAlwaysOn, {}, {}, false},
        util::Rng(id)));
    hosts.back()->start();
    return *hosts.back();
  }

  sim::Simulator sim;
  sim::Network network;
  std::vector<std::unique_ptr<Host>> hosts;
  host::HostId next_id{1};
  const Ipv4 prober_addr = Ipv4::from_octets(10, 1, 0, 1);
};

Service tcp(net::Port port) {
  Service s;
  s.proto = Proto::kTcp;
  s.port = port;
  return s;
}

ScanSpec small_spec(std::vector<Ipv4> targets) {
  ScanSpec spec;
  spec.targets = std::move(targets);
  spec.tcp_ports = {80, 22};
  spec.probes_per_sec = 100.0;
  return spec;
}

TEST(AdaptiveProber, UntrainedUnlimitedBudgetMatchesFixedSweep) {
  // With no priors, no budget and nothing seeded, the queue's tie-break
  // degenerates to the fixed sweep: identical outcomes, identical
  // discoveries.
  const auto build = [](World& w) {
    w.add_host(Ipv4::from_octets(128, 125, 1, 1)).add_service(tcp(80));
    w.add_host(Ipv4::from_octets(128, 125, 1, 2)).add_service(tcp(22));
    w.add_host(Ipv4::from_octets(128, 125, 1, 3));  // all ports closed
    // 128.125.1.4 has no host.
  };
  const std::vector<Ipv4> targets = {
      Ipv4::from_octets(128, 125, 1, 1), Ipv4::from_octets(128, 125, 1, 2),
      Ipv4::from_octets(128, 125, 1, 3), Ipv4::from_octets(128, 125, 1, 4)};

  World wf;
  build(wf);
  Prober fixed(wf.network, {{wf.prober_addr}});
  std::optional<ScanRecord> fixed_rec;
  fixed.start_scan(small_spec(targets),
                   [&](const ScanRecord& r) { fixed_rec = r; });
  wf.sim.run();

  World wa;
  build(wa);
  AdaptiveProber adaptive(wa.network, {{wa.prober_addr}}, AdaptiveConfig{});
  std::optional<ScanRecord> adaptive_rec;
  adaptive.start_scan(small_spec(targets),
                      [&](const ScanRecord& r) { adaptive_rec = r; });
  wa.sim.run();

  ASSERT_TRUE(fixed_rec.has_value());
  ASSERT_TRUE(adaptive_rec.has_value());
  EXPECT_EQ(adaptive_rec->outcomes.size(), fixed_rec->outcomes.size());
  EXPECT_EQ(adaptive_rec->count(ProbeStatus::kOpen),
            fixed_rec->count(ProbeStatus::kOpen));
  EXPECT_EQ(adaptive_rec->count(ProbeStatus::kClosed),
            fixed_rec->count(ProbeStatus::kClosed));
  EXPECT_EQ(adaptive_rec->count(ProbeStatus::kFiltered),
            fixed_rec->count(ProbeStatus::kFiltered));
  EXPECT_EQ(adaptive_rec->count(ProbeStatus::kUnverified), 0u);
  const auto fixed_open = fixed_rec->open_services();
  const auto adaptive_open = adaptive_rec->open_services();
  ASSERT_EQ(adaptive_open.size(), fixed_open.size());
  for (std::size_t i = 0; i < fixed_open.size(); ++i) {
    EXPECT_EQ(adaptive_open[i], fixed_open[i]);
  }
}

TEST(AdaptiveProber, BudgetCapsFirstStageProbes) {
  World w;
  w.add_host(Ipv4::from_octets(128, 125, 1, 1)).add_service(tcp(80));
  AdaptiveConfig cfg;
  cfg.probe_budget = 4;  // grid is 3 addresses x 2 ports = 6
  AdaptiveProber prober(w.network, {{w.prober_addr}}, cfg);
  std::optional<ScanRecord> record;
  prober.start_scan(small_spec({Ipv4::from_octets(128, 125, 1, 1),
                                Ipv4::from_octets(128, 125, 1, 2),
                                Ipv4::from_octets(128, 125, 1, 3)}),
                    [&](const ScanRecord& r) { record = r; });
  w.sim.run();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->outcomes.size(), 4u);
  EXPECT_EQ(prober.budget_spent_total(), 4u);
  // Verification data probes ride for free: the budget counts only
  // first-stage probes, yet the open service still verified.
  EXPECT_EQ(prober.verify_confirmed_total(), 1u);
  EXPECT_EQ(prober.table().size(), 1u);
}

TEST(AdaptiveProber, VerificationDemotesSynAckEverythingHosts) {
  World w;
  Host& middlebox = w.add_host(Ipv4::from_octets(128, 125, 1, 1));
  middlebox.set_syn_policy(SynPolicy::kSynAckAll);  // no real services
  w.add_host(Ipv4::from_octets(128, 125, 1, 2)).add_service(tcp(80));

  AdaptiveProber prober(w.network, {{w.prober_addr}}, AdaptiveConfig{});
  std::optional<ScanRecord> record;
  prober.start_scan(small_spec({Ipv4::from_octets(128, 125, 1, 1),
                                Ipv4::from_octets(128, 125, 1, 2)}),
                    [&](const ScanRecord& r) { record = r; });
  w.sim.run();
  ASSERT_TRUE(record.has_value());
  // The middlebox SYN-ACKed both ports but never speaks past the
  // handshake: demoted, never a discovery. The real service answered the
  // data probe and confirmed.
  EXPECT_EQ(record->count(ProbeStatus::kUnverified), 2u);
  EXPECT_EQ(record->count(ProbeStatus::kOpen), 1u);
  EXPECT_EQ(record->count(ProbeStatus::kClosed), 1u);  // 1.2:22 RST
  EXPECT_EQ(prober.demotions_total(), 2u);
  EXPECT_EQ(prober.verify_confirmed_total(), 1u);
  ASSERT_EQ(prober.table().size(), 1u);
  const auto open = record->open_services();
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0].addr, Ipv4::from_octets(128, 125, 1, 2));
}

TEST(AdaptiveProber, NoVerifyModeCountsSynAcksLikeTheFixedSweep) {
  World w;
  Host& middlebox = w.add_host(Ipv4::from_octets(128, 125, 1, 1));
  middlebox.set_syn_policy(SynPolicy::kSynAckAll);
  AdaptiveConfig cfg;
  cfg.verify = false;
  AdaptiveProber prober(w.network, {{w.prober_addr}}, cfg);
  std::optional<ScanRecord> record;
  prober.start_scan(small_spec({Ipv4::from_octets(128, 125, 1, 1)}),
                    [&](const ScanRecord& r) { record = r; });
  w.sim.run();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->count(ProbeStatus::kOpen), 2u);  // phantom services
  EXPECT_EQ(prober.demotions_total(), 0u);
  EXPECT_EQ(prober.table().size(), 2u);
}

TEST(AdaptiveProber, PassiveSeedsOutrankTheGridAndExtendThePortSpace) {
  World w;
  // The seeded service listens on a port the scan's own list never
  // probes (LZR: services on unexpected ports).
  w.add_host(Ipv4::from_octets(128, 125, 1, 9)).add_service(tcp(8080));
  for (int i = 1; i <= 4; ++i) {
    w.add_host(Ipv4::from_octets(128, 125, 1, static_cast<std::uint8_t>(i)));
  }
  AdaptiveConfig cfg;
  cfg.probe_budget = 1;
  AdaptiveProber prober(w.network, {{w.prober_addr}}, cfg);
  prober.note_passive({Ipv4::from_octets(128, 125, 1, 9), Proto::kTcp, 8080});
  EXPECT_EQ(prober.hint_count(), 1u);

  std::optional<ScanRecord> record;
  prober.start_scan(small_spec({Ipv4::from_octets(128, 125, 1, 1),
                                Ipv4::from_octets(128, 125, 1, 2),
                                Ipv4::from_octets(128, 125, 1, 3),
                                Ipv4::from_octets(128, 125, 1, 4)}),
                    [&](const ScanRecord& r) { record = r; });
  w.sim.run();
  ASSERT_TRUE(record.has_value());
  // The single budgeted probe went to the seed, not the grid.
  ASSERT_EQ(record->outcomes.size(), 1u);
  EXPECT_EQ(record->outcomes[0].key.port, 8080);
  EXPECT_EQ(record->outcomes[0].status, ProbeStatus::kOpen);
  EXPECT_EQ(prober.seeds_probed_total(), 1u);
  EXPECT_EQ(prober.table().size(), 1u);
}

TEST(AdaptiveProber, OutcomesTrainThePriorsOnline) {
  World w;
  for (int i = 1; i <= 4; ++i) {
    w.add_host(Ipv4::from_octets(128, 125, 1, static_cast<std::uint8_t>(i)))
        .add_service(tcp(80));
  }
  AdaptiveProber prober(w.network, {{w.prober_addr}}, AdaptiveConfig{});
  std::optional<ScanRecord> record;
  prober.start_scan(small_spec({Ipv4::from_octets(128, 125, 1, 1),
                                Ipv4::from_octets(128, 125, 1, 2),
                                Ipv4::from_octets(128, 125, 1, 3),
                                Ipv4::from_octets(128, 125, 1, 4)}),
                    [&](const ScanRecord& r) { record = r; });
  w.sim.run();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(prober.priors().probes_recorded(), 8u);
  EXPECT_EQ(prober.priors().opens_recorded(), 4u);
  // Port 80 always opened, port 22 never did: the learned ranking.
  EXPECT_GT(prober.priors().port_popularity(80, Proto::kTcp),
            prober.priors().port_popularity(22, Proto::kTcp));
}

// ----------------------------------------------------- campaign contracts --

std::size_t services_in_block(const passive::ServiceTable& table,
                              const workload::CampusConfig& cfg,
                              std::uint32_t offset, std::uint32_t count) {
  const Prefix campus(cfg.campus_base, 16);
  std::size_t n = 0;
  table.for_each([&](const passive::ServiceKey& key,
                     const passive::ServiceRecord&) {
    const std::uint32_t delta = key.addr.value() - campus.base().value();
    if (campus.contains(key.addr) && delta >= offset &&
        delta < offset + count) {
      ++n;
    }
  });
  return n;
}

std::vector<passive::ServiceKey> keys_outside_block(
    const passive::ServiceTable& table, const workload::CampusConfig& cfg,
    std::uint32_t offset, std::uint32_t count) {
  const Prefix campus(cfg.campus_base, 16);
  std::vector<passive::ServiceKey> keys;
  table.for_each([&](const passive::ServiceKey& key,
                     const passive::ServiceRecord&) {
    const std::uint32_t delta = key.addr.value() - campus.base().value();
    if (campus.contains(key.addr) && delta >= offset &&
        delta < offset + count) {
      return;
    }
    keys.push_back(key);
  });
  return keys;
}

core::ScenarioSpec load_middlebox_pack() {
  core::ScenarioSpec spec;
  std::string error;
  const bool ok = core::load_scenario(
      std::string(SVCDISC_SCENARIO_DIR) + "/middlebox_dpi", &spec, &error);
  EXPECT_TRUE(ok) << error;
  return spec;
}

TEST(AdaptiveCampaign, MiddleboxPackDeflatesUnderLzrVerification) {
  // The satellite contract: on the middlebox_dpi scenario pack the fixed
  // sweep inflates active counts with one phantom service per probed
  // middlebox port, while the adaptive prober's verification stage
  // demotes every one — active falls to the passive-consistent set.
  const core::ScenarioSpec spec = load_middlebox_pack();
  const std::uint32_t boxes = spec.campus.middlebox_hosts;
  ASSERT_GT(boxes, 0u);

  workload::Campus fixed_campus(spec.campus);
  core::DiscoveryEngine fixed(fixed_campus, spec.engine);
  fixed.run();

  core::EngineConfig adaptive_cfg = spec.engine;
  adaptive_cfg.adaptive_prober = true;
  workload::Campus adaptive_campus(spec.campus);
  core::DiscoveryEngine adaptive(adaptive_campus, adaptive_cfg);
  adaptive.run();
  ASSERT_NE(adaptive.adaptive_prober(), nullptr);

  const std::size_t fixed_active = services_in_block(
      fixed.prober().table(), spec.campus, workload::kMiddleboxBlockOffset,
      boxes);
  const std::size_t adaptive_active = services_in_block(
      adaptive.prober().table(), spec.campus, workload::kMiddleboxBlockOffset,
      boxes);
  const std::size_t passive_seen = services_in_block(
      adaptive.monitor().table(), spec.campus, workload::kMiddleboxBlockOffset,
      boxes);

  // Fixed: every probed port on every box fabricates a service.
  EXPECT_GE(fixed_active, static_cast<std::size_t>(boxes) * 3u);
  // Adaptive: the SYN-ACKs never pass data-exchange verification.
  EXPECT_EQ(adaptive_active, 0u);
  EXPECT_LE(adaptive_active, passive_seen);
  EXPECT_GT(adaptive.adaptive_prober()->demotions_total(), 0u);

  // Outside the middlebox block, verification must not cost coverage:
  // everything the fixed sweep found, the adaptive prober confirmed.
  const auto fixed_rest = keys_outside_block(
      fixed.prober().table(), spec.campus, workload::kMiddleboxBlockOffset,
      boxes);
  const auto adaptive_rest = keys_outside_block(
      adaptive.prober().table(), spec.campus, workload::kMiddleboxBlockOffset,
      boxes);
  for (const passive::ServiceKey& key : fixed_rest) {
    EXPECT_NE(std::find(adaptive_rest.begin(), adaptive_rest.end(), key),
              adaptive_rest.end())
        << "lost " << key.addr.to_string() << ":" << key.port;
  }
}

TEST(AdaptiveCampaign, HalfBudgetKeepsNinetyPercentOfFixedDiscoveries) {
  // The acceptance bar: >= 90% of the fixed sweep's discovered services
  // at <= 50% of its probe budget, on a scenario-pack campus.
  auto cfg = workload::CampusConfig::tiny();
  cfg.duration = util::days(1);
  cfg.seed = 7;
  core::EngineConfig engine_cfg;
  engine_cfg.scan_count = 2;

  workload::Campus fixed_campus(cfg);
  core::DiscoveryEngine fixed(fixed_campus, engine_cfg);
  fixed.run();
  std::uint64_t fixed_probes = 0;
  for (const ScanRecord& scan : fixed.prober().scans()) {
    fixed_probes += scan.outcomes.size();
  }
  ASSERT_GT(fixed_probes, 0u);

  core::EngineConfig adaptive_cfg = engine_cfg;
  adaptive_cfg.adaptive_prober = true;
  adaptive_cfg.adaptive.probe_budget =
      fixed_probes / (2 * engine_cfg.scan_count);  // half the per-scan sweep
  workload::Campus adaptive_campus(cfg);
  core::DiscoveryEngine adaptive(adaptive_campus, adaptive_cfg);
  adaptive.run();
  ASSERT_NE(adaptive.adaptive_prober(), nullptr);
  EXPECT_LE(adaptive.adaptive_prober()->budget_spent_total(),
            fixed_probes / 2);

  std::size_t covered = 0;
  std::size_t fixed_total = 0;
  fixed.prober().table().for_each([&](const passive::ServiceKey& key,
                                      const passive::ServiceRecord&) {
    ++fixed_total;
    if (adaptive.prober().table().find(key) != nullptr) ++covered;
  });
  ASSERT_GT(fixed_total, 0u);
  EXPECT_GE(static_cast<double>(covered),
            0.9 * static_cast<double>(fixed_total))
      << covered << "/" << fixed_total << " services at half budget";
}

TEST(AdaptiveCampaign, AdaptiveBudgetScenarioPackMatchesGoldens) {
  // Byte-level pin of the whole adaptive pipeline — seeding, priors,
  // budget draining, verification, adaptive.* metrics — through the
  // same oracle `svcdisc_cli scenario verify` uses. Behavioural drift
  // shows up as a reviewable diff under
  // tests/scenarios/adaptive_budget/expected/.
  const std::string dir =
      std::string(SVCDISC_SCENARIO_DIR) + "/adaptive_budget";
  core::ScenarioSpec spec;
  std::string error;
  ASSERT_TRUE(core::load_scenario(dir, &spec, &error)) << error;
  ASSERT_TRUE(spec.engine.adaptive_prober);
  EXPECT_GT(spec.engine.adaptive.probe_budget, 0u);

  core::ScenarioArtifacts artifacts;
  ASSERT_TRUE(core::run_scenario(spec, &artifacts, &error)) << error;
  const core::VerifyReport report = core::verify_scenario(spec, artifacts);
  EXPECT_TRUE(report.ok())
      << "adaptive campaign output drifted from the goldens; if the "
         "change is intentional, re-record with `svcdisc_cli scenario "
         "record "
      << dir << " --force`\n"
      << report.to_string();
}

TEST(AdaptiveCampaign, ArtifactsByteIdenticalAcrossThreadCounts) {
  // The determinism contract: the passive feed and prior updates run on
  // the simulator thread in producer order, so scan artifacts match
  // byte-for-byte between the serial and sharded engines.
  auto cfg = workload::CampusConfig::tiny();
  cfg.duration = util::seconds_f(0.5 * 86400.0);
  cfg.seed = 11;
  const auto run_with_threads = [&cfg](std::size_t threads) {
    core::EngineConfig engine_cfg;
    engine_cfg.scan_count = 1;
    engine_cfg.threads = threads;
    engine_cfg.adaptive_prober = true;
    engine_cfg.adaptive.probe_budget = 400;
    workload::Campus campus(cfg);
    core::DiscoveryEngine engine(campus, engine_cfg);
    engine.run();
    std::ostringstream out;
    passive::save_table(engine.prober().table(), out);
    out << "spent " << engine.adaptive_prober()->budget_spent_total()
        << " seeds " << engine.adaptive_prober()->seeds_probed_total()
        << " demoted " << engine.adaptive_prober()->demotions_total()
        << "\n";
    for (const ScanRecord& scan : engine.prober().scans()) {
      for (const ProbeOutcome& o : scan.outcomes) {
        out << o.key.addr.value() << ":" << o.key.port << "/"
            << static_cast<int>(o.key.proto) << " "
            << static_cast<int>(o.status) << " " << o.when.usec << "\n";
      }
    }
    return out.str();
  };
  const std::string serial = run_with_threads(1);
  const std::string sharded = run_with_threads(4);
  EXPECT_EQ(serial, sharded);
}

}  // namespace
}  // namespace svcdisc::active
