// Unit tests for capture::RingBuffer.
#include <gtest/gtest.h>

#include "capture/ring_buffer.h"

namespace svcdisc::capture {
namespace {

using net::Ipv4;
using net::Packet;

Packet pkt(int i) {
  Packet p = net::make_tcp(Ipv4::from_octets(1, 1, 1, 1),
                           static_cast<net::Port>(i),
                           Ipv4::from_octets(2, 2, 2, 2), 80,
                           net::flags_syn());
  return p;
}

TEST(RingBuffer, FifoOrder) {
  RingBuffer ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(pkt(i)));
  for (int i = 0; i < 4; ++i) {
    const auto p = ring.pop();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->sport, i);
  }
  EXPECT_FALSE(ring.pop().has_value());
}

TEST(RingBuffer, DropsWhenFull) {
  RingBuffer ring(2);
  EXPECT_TRUE(ring.push(pkt(0)));
  EXPECT_TRUE(ring.push(pkt(1)));
  EXPECT_FALSE(ring.push(pkt(2)));
  EXPECT_EQ(ring.dropped(), 1u);
  EXPECT_EQ(ring.pushed(), 2u);
  // Freeing a slot allows pushes again; the dropped packet is gone.
  ASSERT_TRUE(ring.pop().has_value());
  EXPECT_TRUE(ring.push(pkt(3)));
  EXPECT_EQ(ring.pop()->sport, 1);
  EXPECT_EQ(ring.pop()->sport, 3);
}

TEST(RingBuffer, WrapsAround) {
  RingBuffer ring(3);
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(ring.push(pkt(round)));
    const auto p = ring.pop();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->sport, round);
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(RingBuffer, DrainEmptiesOldestFirst) {
  RingBuffer ring(5);
  for (int i = 0; i < 5; ++i) ring.push(pkt(i));
  const auto all = ring.drain();
  ASSERT_EQ(all.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(all[static_cast<size_t>(i)].sport, i);
  EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, ObserveInterface) {
  RingBuffer ring(1);
  sim::PacketObserver& observer = ring;
  observer.observe(pkt(7));
  observer.observe(pkt(8));  // dropped silently
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.dropped(), 1u);
}

TEST(RingBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer(0), std::invalid_argument);
}

}  // namespace
}  // namespace svcdisc::capture
