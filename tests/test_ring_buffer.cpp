// Unit tests for capture::RingBuffer.
#include <gtest/gtest.h>

#include <deque>

#include "capture/ring_buffer.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace svcdisc::capture {
namespace {

using net::Ipv4;
using net::Packet;

Packet pkt(int i) {
  Packet p = net::make_tcp(Ipv4::from_octets(1, 1, 1, 1),
                           static_cast<net::Port>(i),
                           Ipv4::from_octets(2, 2, 2, 2), 80,
                           net::flags_syn());
  return p;
}

TEST(RingBuffer, FifoOrder) {
  RingBuffer ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(pkt(i)));
  for (int i = 0; i < 4; ++i) {
    const auto p = ring.pop();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->sport, i);
  }
  EXPECT_FALSE(ring.pop().has_value());
}

TEST(RingBuffer, DropsWhenFull) {
  RingBuffer ring(2);
  EXPECT_TRUE(ring.push(pkt(0)));
  EXPECT_TRUE(ring.push(pkt(1)));
  EXPECT_FALSE(ring.push(pkt(2)));
  EXPECT_EQ(ring.dropped(), 1u);
  EXPECT_EQ(ring.pushed(), 3u);  // pushed() counts attempts, drops included
  // Freeing a slot allows pushes again; the dropped packet is gone.
  ASSERT_TRUE(ring.pop().has_value());
  EXPECT_TRUE(ring.push(pkt(3)));
  EXPECT_EQ(ring.pop()->sport, 1);
  EXPECT_EQ(ring.pop()->sport, 3);
}

TEST(RingBuffer, WrapsAround) {
  RingBuffer ring(3);
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(ring.push(pkt(round)));
    const auto p = ring.pop();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->sport, round);
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(RingBuffer, DrainEmptiesOldestFirst) {
  RingBuffer ring(5);
  for (int i = 0; i < 5; ++i) ring.push(pkt(i));
  const auto all = ring.drain();
  ASSERT_EQ(all.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(all[static_cast<size_t>(i)].sport, i);
  EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, ObserveInterface) {
  RingBuffer ring(1);
  sim::PacketObserver& observer = ring;
  observer.observe(pkt(7));
  observer.observe(pkt(8));  // dropped silently
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.dropped(), 1u);
}

TEST(RingBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer(0), std::invalid_argument);
}

// Property test: under any interleaving of push/pop/drain the ring
// behaves like a bounded FIFO with drop-on-overflow, and its counters
// obey the conservation invariant
//   pushed() == popped() + size() + dropped().
// A std::deque serves as the reference model; packets are numbered via
// the source port so FIFO order is checkable end to end.
TEST(RingBufferProperty, RandomInterleavingMatchesModelAndConserves) {
  util::Rng rng(0x51264);
  for (int round = 0; round < 50; ++round) {
    const std::size_t capacity = 1 + rng.below(16);
    RingBuffer ring(capacity);
    util::MetricsRegistry registry;
    ring.attach_metrics(registry, "ring");

    std::deque<int> model;
    std::uint64_t model_dropped = 0;
    std::uint64_t model_popped = 0;
    int next_id = 0;
    for (int op = 0; op < 400; ++op) {
      const std::uint64_t dice = rng.below(10);
      if (dice < 5) {  // push
        const bool accepted = ring.push(pkt(next_id));
        if (model.size() < capacity) {
          EXPECT_TRUE(accepted);
          model.push_back(next_id);
        } else {
          EXPECT_FALSE(accepted);
          ++model_dropped;
        }
        ++next_id;
      } else if (dice < 9) {  // pop
        const auto popped = ring.pop();
        if (model.empty()) {
          EXPECT_FALSE(popped.has_value());
        } else {
          ASSERT_TRUE(popped.has_value());
          EXPECT_EQ(popped->sport, model.front());  // FIFO order
          model.pop_front();
          ++model_popped;
        }
      } else {  // drain
        const auto all = ring.drain();
        ASSERT_EQ(all.size(), model.size());
        for (std::size_t i = 0; i < all.size(); ++i) {
          EXPECT_EQ(all[i].sport, model[i]);
        }
        model_popped += model.size();
        model.clear();
      }
      ASSERT_EQ(ring.size(), model.size());
      ASSERT_EQ(ring.pushed(),
                ring.popped() + ring.size() + ring.dropped());
    }
    EXPECT_EQ(ring.pushed(), static_cast<std::uint64_t>(next_id));
    EXPECT_EQ(ring.dropped(), model_dropped);
    EXPECT_EQ(ring.popped(), model_popped);

    // The attached metrics mirror the counters exactly.
    const auto snapshot = registry.snapshot();
    EXPECT_EQ(snapshot.value_of("ring.pushed"),
              static_cast<double>(ring.pushed()));
    EXPECT_EQ(snapshot.value_of("ring.popped"),
              static_cast<double>(ring.popped()));
    EXPECT_EQ(snapshot.value_of("ring.dropped"),
              static_cast<double>(ring.dropped()));
    EXPECT_LE(snapshot.value_of("ring.depth_hwm"),
              static_cast<double>(capacity));
  }
}

}  // namespace
}  // namespace svcdisc::capture
