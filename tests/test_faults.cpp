// Fault-path tests for the capture substrate: a corpus of corrupt pcap
// inputs (bad magic, truncated headers, lying length fields, mid-record
// EOF), writer behaviour on dead streams, sampler behaviour on negative
// timestamps, and a merger property test against a naive reference under
// duplicated timestamps and cross-tap skew.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "capture/merger.h"
#include "capture/pcap_file.h"
#include "capture/sampler.h"
#include "net/packet.h"
#include "net/wire.h"
#include "util/rng.h"

namespace svcdisc::capture {
namespace {

using net::Ipv4;
using net::Packet;
using util::kEpoch;
using util::msec;
using util::usec;

// --------------------------------------------------- corrupt pcap corpus --

void append32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void append16le(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

std::string global_header(std::uint32_t magic = kPcapMagicUsec,
                          std::uint32_t snaplen = 65535,
                          std::uint32_t linktype = kLinktypeRaw) {
  std::string out;
  append32le(out, magic);
  append16le(out, 2);
  append16le(out, 4);
  append32le(out, 0);  // thiszone
  append32le(out, 0);  // sigfigs
  append32le(out, snaplen);
  append32le(out, linktype);
  return out;
}

std::string one_valid_record() {
  Packet p = net::make_tcp(Ipv4::from_octets(6, 6, 6, 6), 1000,
                           Ipv4::from_octets(128, 125, 1, 1), 80,
                           net::flags_syn());
  const auto bytes = net::serialize(p);
  std::string out;
  append32le(out, 1158663600u);  // ts_sec (writer default epoch)
  append32le(out, 0);            // ts_usec
  append32le(out, static_cast<std::uint32_t>(bytes.size()));
  append32le(out, static_cast<std::uint32_t>(bytes.size()));
  out.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return out;
}

std::string write_corpus_file(const char* name, const std::string& bytes) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

TEST(PcapCorrupt, BadMagicRejected) {
  const auto path = write_corpus_file(
      "bad_magic.pcap", global_header(0xdeadbeef) + one_valid_record());
  const auto result = PcapReader::read_file(path);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.packets.empty());
  std::remove(path.c_str());
}

TEST(PcapCorrupt, ShortGlobalHeaderRejected) {
  const auto path = write_corpus_file(
      "short_header.pcap", global_header().substr(0, 13));
  const auto result = PcapReader::read_file(path);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.packets.empty());
  std::remove(path.c_str());
}

TEST(PcapCorrupt, LyingInclLenStopsWithoutHugeAllocation) {
  // incl_len claims ~4 GiB; the reader must flag the file bad and stop
  // before attempting the allocation — one good record still parses.
  std::string bytes = global_header() + one_valid_record();
  append32le(bytes, 1158663600u);
  append32le(bytes, 0);
  append32le(bytes, 0xfffffff0u);  // incl_len: lie
  append32le(bytes, 0xfffffff0u);
  bytes += "trailing garbage";
  const auto path = write_corpus_file("lying_len.pcap", bytes);
  const auto result = PcapReader::read_file(path);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.packets.size(), 1u);
  EXPECT_EQ(result.skipped, 1u);
  std::remove(path.c_str());
}

TEST(PcapCorrupt, InclLenBeyondSnaplenRejected) {
  // Header promises snaplen 256; a record claiming 1 KiB is framed by a
  // liar even though 1 KiB is itself harmless.
  std::string bytes = global_header(kPcapMagicUsec, 256);
  append32le(bytes, 1158663600u);
  append32le(bytes, 0);
  append32le(bytes, 1024);
  append32le(bytes, 1024);
  bytes.append(1024, '\0');
  const auto path = write_corpus_file("beyond_snaplen.pcap", bytes);
  const auto result = PcapReader::read_file(path);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.skipped, 1u);
  std::remove(path.c_str());
}

TEST(PcapCorrupt, MidRecordEofFlagsFile) {
  // Record header promises 40 payload bytes, file ends after 10.
  std::string bytes = global_header() + one_valid_record();
  append32le(bytes, 1158663600u);
  append32le(bytes, 0);
  append32le(bytes, 40);
  append32le(bytes, 40);
  bytes.append(10, '\x42');
  const auto path = write_corpus_file("mid_record_eof.pcap", bytes);
  const auto result = PcapReader::read_file(path);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.packets.size(), 1u);  // the good record survived
  std::remove(path.c_str());
}

TEST(PcapCorrupt, TruncatedRecordHeaderFlagsFile) {
  std::string bytes = global_header() + one_valid_record();
  append32le(bytes, 1158663600u);
  append32le(bytes, 0);  // then EOF: only half a record header
  const auto path = write_corpus_file("short_record_header.pcap", bytes);
  const auto result = PcapReader::read_file(path);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.packets.size(), 1u);
  std::remove(path.c_str());
}

TEST(PcapCorrupt, UnparseablePayloadSkippedButFileContinues) {
  // Garbage payload within bounds: skipped, later records still read,
  // file stays ok (framing was never violated).
  std::string bytes = global_header();
  append32le(bytes, 1158663600u);
  append32le(bytes, 0);
  append32le(bytes, 16);
  append32le(bytes, 16);
  bytes.append(16, '\x99');
  bytes += one_valid_record();
  const auto path = write_corpus_file("garbage_payload.pcap", bytes);
  const auto result = PcapReader::read_file(path);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.packets.size(), 1u);
  EXPECT_EQ(result.skipped, 1u);
  std::remove(path.c_str());
}

// ------------------------------------------------------------ bad writer --

TEST(PcapWriterFaults, UnopenableFileCountsEveryRecordAsFailed) {
  PcapWriter writer("/nonexistent-dir/capture.pcap");
  EXPECT_FALSE(writer.ok());
  Packet p = net::make_tcp(Ipv4::from_octets(6, 6, 6, 6), 1000,
                           Ipv4::from_octets(128, 125, 1, 1), 80,
                           net::flags_syn());
  writer.write(p);
  writer.write(p);
  EXPECT_EQ(writer.written(), 0u);
  EXPECT_EQ(writer.failed(), 2u);
  EXPECT_FALSE(writer.ok());
}

// --------------------------------------------------- sampler regression --

TEST(SamplerFaults, FixedPeriodSamplerHandlesNegativeTimestamps) {
  // Negative timestamps arise from pcap epoch-offset subtraction and
  // negative clock skew. Truncating `%` used to make every negative
  // timestamp fall outside the on-window; floored modulo keeps the
  // schedule periodic across zero.
  FixedPeriodSampler sampler(msec(10), msec(100));
  // In-window instants, one period apart, on both sides of zero.
  Packet p = net::make_tcp(Ipv4::from_octets(6, 6, 6, 6), 1000,
                           Ipv4::from_octets(128, 125, 1, 1), 80,
                           net::flags_syn());
  p.time = util::TimePoint{msec(5).usec};
  EXPECT_TRUE(sampler.keep(p));
  p.time = util::TimePoint{msec(5).usec - msec(100).usec};  // -95 ms
  EXPECT_TRUE(sampler.keep(p));
  p.time = util::TimePoint{msec(50).usec - msec(100).usec};  // -50 ms: off
  EXPECT_FALSE(sampler.keep(p));
  // The window boundary behaves identically left of zero.
  p.time = util::TimePoint{msec(10).usec - msec(100).usec};
  EXPECT_FALSE(sampler.keep(p));
  p.time = util::TimePoint{msec(10).usec - 1 - msec(100).usec};
  EXPECT_TRUE(sampler.keep(p));
}

TEST(SamplerFaults, FlooredModuloMatchesPositiveBehaviourOneePeriodBack) {
  FixedPeriodSampler sampler(msec(25), msec(250));
  Packet p = net::make_tcp(Ipv4::from_octets(6, 6, 6, 6), 1000,
                           Ipv4::from_octets(128, 125, 1, 1), 80,
                           net::flags_syn());
  for (std::int64_t offset_ms = 0; offset_ms < 250; offset_ms += 7) {
    p.time = util::TimePoint{msec(offset_ms).usec};
    const bool positive = sampler.keep(p);
    p.time = util::TimePoint{msec(offset_ms).usec - msec(250).usec};
    EXPECT_EQ(sampler.keep(p), positive) << "offset " << offset_ms << "ms";
  }
}

// ------------------------------------------------- merger property test --

std::vector<Packet> random_stream(util::Rng& rng, std::size_t n,
                                  std::uint32_t stream_tag) {
  std::vector<Packet> out;
  out.reserve(n);
  std::int64_t t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // Small increments with frequent zero steps force duplicate
    // timestamps both within and across streams.
    t += rng.below(3);
    Packet p = net::make_tcp(Ipv4::from_octets(6, 6, 6, 6), 1000,
                             Ipv4::from_octets(128, 125, 1, 1), 80,
                             net::flags_syn());
    p.time = util::TimePoint{t * 1000};
    // Tag identity into seq: high bits = stream, low bits = position.
    p.seq = (stream_tag << 24) | static_cast<std::uint32_t>(i);
    out.push_back(p);
  }
  return out;
}

/// Reference implementation: concatenate in stream order, stable-sort by
/// time. Stability gives exactly the documented (time, stream index,
/// intra-stream order) tie-break.
std::vector<Packet> naive_merge(
    const std::vector<std::vector<Packet>>& streams) {
  std::vector<Packet> all;
  for (const auto& s : streams) all.insert(all.end(), s.begin(), s.end());
  std::stable_sort(all.begin(), all.end(),
                   [](const Packet& a, const Packet& b) {
                     return a.time < b.time;
                   });
  return all;
}

TEST(MergerProperty, MatchesNaiveReferenceWithDuplicateTimestamps) {
  util::Rng rng(20260806);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::vector<Packet>> streams;
    const std::size_t k = 1 + rng.below(5);
    for (std::size_t s = 0; s < k; ++s) {
      streams.push_back(
          random_stream(rng, rng.below(60), static_cast<std::uint32_t>(s)));
    }
    const auto expected = naive_merge(streams);
    const auto merged = merge_streams(streams);
    ASSERT_EQ(merged.size(), expected.size()) << "trial " << trial;
    for (std::size_t i = 0; i < merged.size(); ++i) {
      ASSERT_EQ(merged[i].seq, expected[i].seq)
          << "trial " << trial << " position " << i;
      ASSERT_EQ(merged[i].time, expected[i].time);
    }
  }
}

TEST(MergerProperty, UnsortedInputStreamStillMergesCorrectly) {
  // An impaired tap emits out-of-order packets; the merger must not
  // trust per-stream order.
  util::Rng rng(7);
  auto a = random_stream(rng, 40, 0);
  auto b = random_stream(rng, 40, 1);
  std::swap(b[5], b[20]);  // break b's sort order
  std::vector<std::vector<Packet>> streams{a, b};

  auto reference_streams = streams;
  std::stable_sort(reference_streams[1].begin(), reference_streams[1].end(),
                   [](const Packet& x, const Packet& y) {
                     return x.time < y.time;
                   });
  const auto expected = naive_merge(reference_streams);
  const auto merged = merge_streams(streams);
  ASSERT_EQ(merged.size(), expected.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    ASSERT_EQ(merged[i].seq, expected[i].seq) << "position " << i;
  }
}

TEST(MergerProperty, SkewCompensationAlignsDriftedTaps) {
  util::Rng rng(99);
  const auto truth = random_stream(rng, 80, 0);
  // Split ground truth across two taps; tap 1's clock runs 5 ms fast.
  std::vector<Packet> tap0, tap1;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    Packet p = truth[i];
    if (i % 2 == 0) {
      tap0.push_back(p);
    } else {
      p.time = p.time + msec(5);
      tap1.push_back(p);
    }
  }
  std::vector<std::vector<Packet>> streams{tap0, tap1};
  const std::vector<util::Duration> skews{usec(0), msec(5)};
  const auto merged = merge_streams(streams, skews);

  ASSERT_EQ(merged.size(), truth.size());
  // De-skewed output is ordered in corrected time and restores the
  // original timestamps.
  for (std::size_t i = 0; i + 1 < merged.size(); ++i) {
    EXPECT_LE(merged[i].time, merged[i + 1].time);
  }
  std::vector<Packet> expected = truth;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Packet& x, const Packet& y) {
                     return x.time < y.time;
                   });
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].time, expected[i].time) << "position " << i;
  }

  // Shorter-than-streams skew span means zero skew for the rest.
  const std::vector<util::Duration> partial{usec(0)};
  const auto partial_merged = merge_streams(streams, partial);
  EXPECT_EQ(partial_merged.size(), truth.size());
}

}  // namespace
}  // namespace svcdisc::capture
