// Unit tests for active: token bucket, prober semantics, scheduler.
#include <gtest/gtest.h>

#include <optional>

#include "active/prober.h"
#include "active/rate_limiter.h"
#include "active/scan_scheduler.h"
#include "host/host.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace svcdisc::active {
namespace {

using host::Firewall;
using host::FirewallMode;
using host::Host;
using host::LifecycleConfig;
using host::LifecycleKind;
using host::Service;
using net::Ipv4;
using net::Prefix;
using util::hours;
using util::kEpoch;
using util::seconds;

// ------------------------------------------------------------ TokenBucket

TEST(TokenBucket, BurstAvailableImmediately) {
  TokenBucket bucket(10.0, 5.0);
  EXPECT_EQ(bucket.next_available(kEpoch), kEpoch);
  for (int i = 0; i < 5; ++i) bucket.consume(kEpoch);
  // Burst exhausted: the sixth token takes 1/10 s to refill.
  const auto next = bucket.next_available(kEpoch);
  EXPECT_NEAR(static_cast<double>((next - kEpoch).usec), 1e5, 1e3);
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket bucket(2.0, 1.0);
  bucket.consume(kEpoch);
  EXPECT_NEAR(bucket.tokens_at(kEpoch + seconds(1)), 1.0, 1e-9);
  // Tokens cap at burst.
  EXPECT_NEAR(bucket.tokens_at(kEpoch + seconds(100)), 1.0, 1e-9);
}

TEST(TokenBucket, RejectsBadConfig) {
  EXPECT_THROW(TokenBucket(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(TokenBucket(1.0, 0.5), std::invalid_argument);
}

// ---------------------------------------------------------------- Prober --

struct ProberFixture : ::testing::Test {
  ProberFixture()
      : network(sim, {Prefix(Ipv4::from_octets(128, 125, 0, 0), 16),
                      Prefix(Ipv4::from_octets(10, 1, 0, 0), 24)}) {}

  Host& add_host(Ipv4 addr) {
    const host::HostId id = next_id++;
    hosts.push_back(std::make_unique<Host>(
        id, network, nullptr, addr,
        LifecycleConfig{LifecycleKind::kAlwaysOn, {}, {}, false},
        util::Rng(id)));
    hosts.back()->start();
    return *hosts.back();
  }

  static Service tcp(net::Port port) {
    Service s;
    s.proto = net::Proto::kTcp;
    s.port = port;
    return s;
  }

  ScanSpec spec_for(std::vector<Ipv4> targets) {
    ScanSpec spec;
    spec.targets = std::move(targets);
    spec.tcp_ports = {80, 22};
    spec.probes_per_sec = 100.0;
    return spec;
  }

  sim::Simulator sim;
  sim::Network network;
  std::vector<std::unique_ptr<Host>> hosts;
  host::HostId next_id{1};
  const Ipv4 prober_addr = Ipv4::from_octets(10, 1, 0, 1);
};

TEST_F(ProberFixture, ClassifiesOpenClosedFiltered) {
  Host& open_host = add_host(Ipv4::from_octets(128, 125, 1, 1));
  open_host.add_service(tcp(80));
  Host& firewalled = add_host(Ipv4::from_octets(128, 125, 1, 2));
  firewalled.add_service(tcp(80));
  firewalled.firewall().set_mode(FirewallMode::kBlockProbers);
  firewalled.firewall().add_prober(prober_addr);
  // 128.125.1.3 has no host at all.

  Prober prober(network, {{prober_addr}});
  std::optional<ScanRecord> record;
  prober.start_scan(spec_for({Ipv4::from_octets(128, 125, 1, 1),
                              Ipv4::from_octets(128, 125, 1, 2),
                              Ipv4::from_octets(128, 125, 1, 3)}),
                    [&](const ScanRecord& r) { record = r; });
  sim.run();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->outcomes.size(), 6u);
  EXPECT_EQ(record->count(ProbeStatus::kOpen), 1u);    // 1.1:80
  EXPECT_EQ(record->count(ProbeStatus::kClosed), 1u);  // 1.1:22 RST
  EXPECT_EQ(record->count(ProbeStatus::kFiltered), 4u);

  const auto open = record->open_services();
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0].addr, Ipv4::from_octets(128, 125, 1, 1));
  EXPECT_EQ(open[0].port, 80);
}

TEST_F(ProberFixture, CumulativeTableAndCallback) {
  Host& h = add_host(Ipv4::from_octets(128, 125, 1, 1));
  h.add_service(tcp(80));
  Prober prober(network, {{prober_addr}});
  int discoveries = 0;
  prober.on_discovery = [&](const passive::ServiceKey&, util::TimePoint) {
    ++discoveries;
  };
  prober.start_scan(spec_for({Ipv4::from_octets(128, 125, 1, 1)}));
  sim.run();
  prober.start_scan(spec_for({Ipv4::from_octets(128, 125, 1, 1)}));
  sim.run();
  EXPECT_EQ(prober.scans().size(), 2u);
  EXPECT_EQ(prober.table().size(), 1u);  // discovered once
  EXPECT_EQ(discoveries, 1);
}

TEST_F(ProberFixture, RateLimitPacesScan) {
  for (int i = 0; i < 20; ++i) {
    add_host(Ipv4::from_octets(128, 125, 2, static_cast<std::uint8_t>(i)));
  }
  std::vector<Ipv4> targets;
  for (int i = 0; i < 20; ++i) {
    targets.push_back(Ipv4::from_octets(128, 125, 2,
                                        static_cast<std::uint8_t>(i)));
  }
  ScanSpec spec = spec_for(targets);
  spec.probes_per_sec = 2.0;  // 40 probes -> ~20 s
  Prober prober(network, {{prober_addr}});
  std::optional<ScanRecord> record;
  prober.start_scan(spec, [&](const ScanRecord& r) { record = r; });
  sim.run();
  ASSERT_TRUE(record.has_value());
  const double elapsed_sec =
      static_cast<double>((record->finished - record->started).usec) / 1e6;
  EXPECT_GT(elapsed_sec, 18.0);
  EXPECT_LT(elapsed_sec, 28.0);
}

TEST_F(ProberFixture, SplitsAcrossMachines) {
  for (int i = 0; i < 20; ++i) {
    add_host(Ipv4::from_octets(128, 125, 2, static_cast<std::uint8_t>(i)));
  }
  std::vector<Ipv4> targets;
  for (int i = 0; i < 20; ++i) {
    targets.push_back(Ipv4::from_octets(128, 125, 2,
                                        static_cast<std::uint8_t>(i)));
  }
  ScanSpec spec = spec_for(targets);
  spec.probes_per_sec = 2.0;
  // Two machines should roughly halve the elapsed time.
  Prober prober(network,
                {{prober_addr, Ipv4::from_octets(10, 1, 0, 2)}});
  std::optional<ScanRecord> record;
  prober.start_scan(spec, [&](const ScanRecord& r) { record = r; });
  sim.run();
  ASSERT_TRUE(record.has_value());
  const double elapsed_sec =
      static_cast<double>((record->finished - record->started).usec) / 1e6;
  EXPECT_LT(elapsed_sec, 15.0);
}

TEST_F(ProberFixture, UdpScanStatuses) {
  // Host A: DNS answers generic probes; port 137 closed (ICMP).
  Host& a = add_host(Ipv4::from_octets(128, 125, 3, 1));
  Service dns;
  dns.proto = net::Proto::kUdp;
  dns.port = 53;
  dns.udp_replies_to_generic_probe = true;
  a.add_service(dns);
  // Host B: silent open service on 137 (replies to nothing, no ICMP for
  // the open port), closed 53 -> ICMP, so the host is provably alive.
  Host& b = add_host(Ipv4::from_octets(128, 125, 3, 2));
  Service netbios;
  netbios.proto = net::Proto::kUdp;
  netbios.port = 137;
  netbios.udp_replies_to_generic_probe = false;
  b.add_service(netbios);
  // Address .3 has no host: every probe unanswered -> no-host.

  ScanSpec spec;
  spec.targets = {Ipv4::from_octets(128, 125, 3, 1),
                  Ipv4::from_octets(128, 125, 3, 2),
                  Ipv4::from_octets(128, 125, 3, 3)};
  spec.udp_ports = {53, 137};
  spec.probes_per_sec = 100.0;

  Prober prober(network, {{prober_addr}});
  std::optional<ScanRecord> record;
  prober.start_scan(spec, [&](const ScanRecord& r) { record = r; });
  sim.run();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->count(ProbeStatus::kOpenUdp), 1u);   // A:53
  EXPECT_EQ(record->count(ProbeStatus::kClosed), 2u);    // A:137, B:53
  EXPECT_EQ(record->count(ProbeStatus::kMaybeOpen), 1u); // B:137
  EXPECT_EQ(record->count(ProbeStatus::kNoHost), 2u);    // .3 both ports
}

TEST_F(ProberFixture, PingAliveHostUpgradesSilentUdpToMaybeOpen) {
  // Regression: a host that proved itself alive *only* through the
  // host-discovery ping (no port probe ever answered: no UDP service, no
  // ICMP port-unreachable) used to classify as kNoHost. §4.5 says
  // "possibly open IF the host proved alive" — and a ping reply is
  // proof.
  Host& h = add_host(Ipv4::from_octets(128, 125, 4, 1));
  h.set_udp_icmp(false);  // closed ports stay silent

  ScanSpec spec;
  spec.targets = {Ipv4::from_octets(128, 125, 4, 1)};
  spec.udp_ports = {137};
  spec.probes_per_sec = 100.0;
  spec.host_discovery = true;

  Prober prober(network, {{prober_addr}});
  std::optional<ScanRecord> record;
  prober.start_scan(spec, [&](const ScanRecord& r) { record = r; });
  sim.run();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->hosts_alive, 1u);
  ASSERT_EQ(record->outcomes.size(), 1u);
  EXPECT_EQ(record->outcomes[0].status, ProbeStatus::kMaybeOpen);
}

TEST_F(ProberFixture, RejectsConcurrentScans) {
  add_host(Ipv4::from_octets(128, 125, 1, 1));
  Prober prober(network, {{prober_addr}});
  prober.start_scan(spec_for({Ipv4::from_octets(128, 125, 1, 1)}));
  EXPECT_THROW(
      prober.start_scan(spec_for({Ipv4::from_octets(128, 125, 1, 1)})),
      std::logic_error);
  sim.run();
}

TEST_F(ProberFixture, RequiresSourceAddress) {
  EXPECT_THROW(Prober(network, {{}}), std::invalid_argument);
}

TEST_F(ProberFixture, EmptyScanCompletes) {
  Prober prober(network, {{prober_addr}});
  bool completed = false;
  ScanSpec spec;
  spec.tcp_ports = {80};
  prober.start_scan(spec, [&](const ScanRecord&) { completed = true; });
  sim.run();
  EXPECT_TRUE(completed);
  EXPECT_FALSE(prober.scan_in_progress());
}

// -------------------------------------------------------------- Scheduler --

TEST_F(ProberFixture, SchedulerFiresPeriodically) {
  Host& h = add_host(Ipv4::from_octets(128, 125, 1, 1));
  h.add_service(tcp(80));
  Prober prober(network, {{prober_addr}});
  ScheduleConfig schedule;
  schedule.first_scan = kEpoch + hours(1);
  schedule.period = hours(12);
  schedule.count = 4;
  ScanScheduler scheduler(sim, prober,
                          spec_for({Ipv4::from_octets(128, 125, 1, 1)}),
                          schedule);
  int completions = 0;
  scheduler.on_scan_complete = [&](const ScanRecord&) { ++completions; };
  scheduler.arm();
  sim.run_until(kEpoch + hours(48));
  EXPECT_EQ(scheduler.fired(), 4);
  EXPECT_EQ(completions, 4);
  ASSERT_EQ(prober.scans().size(), 4u);
  EXPECT_EQ(prober.scans()[0].started, kEpoch + hours(1));
  EXPECT_EQ(prober.scans()[1].started, kEpoch + hours(13));
}

TEST_F(ProberFixture, SchedulerCannotArmTwice) {
  Prober prober(network, {{prober_addr}});
  ScanScheduler scheduler(sim, prober, spec_for({}), ScheduleConfig{});
  scheduler.arm();
  EXPECT_THROW(scheduler.arm(), std::logic_error);
}

}  // namespace
}  // namespace svcdisc::active
