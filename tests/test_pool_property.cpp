// Property tests for AddressPool: randomized acquire/release sequences
// must preserve the pool invariants under every (class, sticky) combo.
//
// Invariants:
//   * no address is leased to two holders at once;
//   * every granted address lies inside the pool's prefix;
//   * sticky pools return the same address to the same host forever;
//   * free_count + outstanding (+ parked sticky reservations) == size.
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "host/address_pool.h"
#include "util/rng.h"

namespace svcdisc::host {
namespace {

using net::Ipv4;
using net::Prefix;

struct PoolCase {
  AddressClass cls;
  bool sticky;
  int prefix_bits;
  std::uint64_t seed;
};

class PoolProperty : public ::testing::TestWithParam<PoolCase> {};

TEST_P(PoolProperty, RandomizedLifecyclePreservesInvariants) {
  const PoolCase pc = GetParam();
  const Prefix prefix(Ipv4::from_octets(128, 125, 56, 0), pc.prefix_bits);
  AddressPool pool(pc.cls, prefix, pc.sticky, pc.seed);
  util::Rng rng(pc.seed ^ 0xABCDEF);

  constexpr std::uint32_t kHosts = 40;
  std::unordered_map<std::uint32_t, Ipv4> held;           // host -> lease
  std::unordered_map<std::uint32_t, Ipv4> ever_assigned;  // sticky memory
  std::unordered_set<Ipv4> leased_now;

  for (int step = 0; step < 4000; ++step) {
    const auto host_id = static_cast<std::uint32_t>(rng.below(kHosts));
    const auto it = held.find(host_id);
    if (it == held.end()) {
      const auto addr = pool.acquire(host_id);
      if (!addr.has_value()) {
        // Exhaustion is only legal when the free list is really empty.
        ASSERT_EQ(pool.free_count(), 0u);
        continue;
      }
      ASSERT_TRUE(prefix.contains(*addr)) << addr->to_string();
      ASSERT_FALSE(leased_now.contains(*addr))
          << "double lease of " << addr->to_string();
      if (pc.sticky) {
        const auto prev = ever_assigned.find(host_id);
        if (prev != ever_assigned.end()) {
          ASSERT_EQ(*addr, prev->second) << "sticky reassignment";
        }
        ever_assigned[host_id] = *addr;
      }
      leased_now.insert(*addr);
      held[host_id] = *addr;
    } else {
      pool.release(host_id, it->second);
      leased_now.erase(it->second);
      held.erase(it);
    }

    // Accounting: every address is free, leased, or (sticky) parked.
    const std::size_t parked =
        pc.sticky ? ever_assigned.size() - leased_now.size() : 0;
    ASSERT_EQ(pool.free_count() + leased_now.size() + parked, pool.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, PoolProperty,
    ::testing::Values(PoolCase{AddressClass::kDhcp, true, 26, 1},
                      PoolCase{AddressClass::kDhcp, true, 27, 2},
                      PoolCase{AddressClass::kPpp, false, 26, 3},
                      PoolCase{AddressClass::kVpn, false, 27, 4},
                      PoolCase{AddressClass::kWireless, false, 28, 5},
                      PoolCase{AddressClass::kDhcp, true, 28, 6}));

}  // namespace
}  // namespace svcdisc::host
