// Property tests for AddressPool: randomized acquire/release sequences
// must preserve the pool invariants under every (class, sticky) combo.
//
// Invariants:
//   * no address is leased to two holders at once;
//   * every granted address lies inside the pool's prefix;
//   * sticky pools return the same address to the same host forever;
//   * free_count + outstanding (+ parked sticky reservations) == size.
#include <gtest/gtest.h>

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "host/address_pool.h"
#include "util/rng.h"

namespace svcdisc::host {
namespace {

using net::Ipv4;
using net::Prefix;

struct PoolCase {
  AddressClass cls;
  bool sticky;
  int prefix_bits;
  std::uint64_t seed;
};

class PoolProperty : public ::testing::TestWithParam<PoolCase> {};

TEST_P(PoolProperty, RandomizedLifecyclePreservesInvariants) {
  const PoolCase pc = GetParam();
  const Prefix prefix(Ipv4::from_octets(128, 125, 56, 0), pc.prefix_bits);
  AddressPool pool(pc.cls, prefix, pc.sticky, pc.seed);
  util::Rng rng(pc.seed ^ 0xABCDEF);

  constexpr std::uint32_t kHosts = 40;
  std::unordered_map<std::uint32_t, Ipv4> held;           // host -> lease
  std::unordered_map<std::uint32_t, Ipv4> ever_assigned;  // sticky memory
  std::unordered_set<Ipv4> leased_now;

  for (int step = 0; step < 4000; ++step) {
    const auto host_id = static_cast<std::uint32_t>(rng.below(kHosts));
    const auto it = held.find(host_id);
    if (it == held.end()) {
      const auto addr = pool.acquire(host_id);
      if (!addr.has_value()) {
        // Exhaustion is only legal when the free list is really empty.
        ASSERT_EQ(pool.free_count(), 0u);
        continue;
      }
      ASSERT_TRUE(prefix.contains(*addr)) << addr->to_string();
      ASSERT_FALSE(leased_now.contains(*addr))
          << "double lease of " << addr->to_string();
      if (pc.sticky) {
        const auto prev = ever_assigned.find(host_id);
        if (prev != ever_assigned.end()) {
          ASSERT_EQ(*addr, prev->second) << "sticky reassignment";
        }
        ever_assigned[host_id] = *addr;
      }
      leased_now.insert(*addr);
      held[host_id] = *addr;
    } else {
      pool.release(host_id, it->second);
      leased_now.erase(it->second);
      held.erase(it);
    }

    // Accounting: every address is free, leased, or (sticky) parked.
    const std::size_t parked =
        pc.sticky ? ever_assigned.size() - leased_now.size() : 0;
    ASSERT_EQ(pool.free_count() + leased_now.size() + parked, pool.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, PoolProperty,
    ::testing::Values(PoolCase{AddressClass::kDhcp, true, 26, 1},
                      PoolCase{AddressClass::kDhcp, true, 27, 2},
                      PoolCase{AddressClass::kPpp, false, 26, 3},
                      PoolCase{AddressClass::kVpn, false, 27, 4},
                      PoolCase{AddressClass::kWireless, false, 28, 5},
                      PoolCase{AddressClass::kDhcp, true, 28, 6}));

// ------------------------------------------------- scale / lazy pools --
//
// The pool used to materialize every address of its prefix at
// construction (a /12 pre-allocated ~1M free-list entries before the
// first lease). The lazy rewrite must (a) keep the seeded lease sequence
// byte-identical — scenario goldens depend on it — and (b) construct in
// O(1) regardless of prefix size. The reference below is the pre-refactor
// eager implementation, kept verbatim as the sequence oracle.
class EagerReferencePool {
 public:
  EagerReferencePool(Prefix prefix, bool sticky, std::uint64_t seed)
      : prefix_(prefix), sticky_(sticky), rng_(seed) {
    const std::uint64_t n = prefix.size();
    free_.reserve(n);
    free_index_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const Ipv4 addr = prefix.at(i);
      free_index_[addr] = free_.size();
      free_.push_back(addr);
    }
  }

  std::optional<Ipv4> acquire(std::uint32_t host_id) {
    if (sticky_) {
      const auto it = reservations_.find(host_id);
      if (it != reservations_.end()) return it->second;
    }
    if (free_.empty()) return std::nullopt;
    const std::size_t pick =
        static_cast<std::size_t>(rng_.below(free_.size()));
    const Ipv4 addr = free_[pick];
    remove_free(addr);
    if (sticky_) reservations_[host_id] = addr;
    return addr;
  }

  void release(std::uint32_t host_id, Ipv4 addr) {
    if (sticky_) {
      const auto it = reservations_.find(host_id);
      if (it != reservations_.end() && it->second == addr) return;
    }
    if (!prefix_.contains(addr) || free_index_.contains(addr)) return;
    free_index_[addr] = free_.size();
    free_.push_back(addr);
  }

  std::size_t free_count() const { return free_.size(); }

 private:
  void remove_free(Ipv4 addr) {
    const auto it = free_index_.find(addr);
    if (it == free_index_.end()) return;
    const std::size_t idx = it->second;
    const Ipv4 last = free_.back();
    free_[idx] = last;
    free_index_[last] = idx;
    free_.pop_back();
    free_index_.erase(it);
  }

  Prefix prefix_;
  bool sticky_;
  util::Rng rng_;
  std::vector<Ipv4> free_;
  std::unordered_map<Ipv4, std::size_t> free_index_;
  std::unordered_map<std::uint32_t, Ipv4> reservations_;
};

struct ScaleCase {
  bool sticky;
  int prefix_bits;
  std::uint64_t seed;
};

class PoolSequence : public ::testing::TestWithParam<ScaleCase> {};

// Interleaved acquire/release churn: every lease the lazy pool hands out
// must match the eager reference draw-for-draw, and free counts must
// agree after every step. /16 (65536 addresses) is the largest size the
// eager reference can afford to materialize in a test.
TEST_P(PoolSequence, ChurnMatchesEagerReferenceDrawForDraw) {
  const ScaleCase sc = GetParam();
  const Prefix prefix(Ipv4::from_octets(10, 32, 0, 0), sc.prefix_bits);
  AddressPool lazy(AddressClass::kDhcp, prefix, sc.sticky, sc.seed);
  EagerReferencePool eager(prefix, sc.sticky, sc.seed);
  util::Rng rng(sc.seed ^ 0x5CA1E);

  constexpr std::uint32_t kHosts = 64;
  std::unordered_map<std::uint32_t, Ipv4> held;
  for (int step = 0; step < 6000; ++step) {
    const auto host_id = static_cast<std::uint32_t>(rng.below(kHosts));
    const auto it = held.find(host_id);
    if (it == held.end()) {
      const auto got = lazy.acquire(host_id);
      const auto want = eager.acquire(host_id);
      ASSERT_EQ(got.has_value(), want.has_value()) << "step " << step;
      if (got.has_value()) {
        ASSERT_EQ(*got, *want)
            << "lease sequence diverged at step " << step << ": lazy="
            << got->to_string() << " eager=" << want->to_string();
        held[host_id] = *got;
      }
    } else {
      lazy.release(host_id, it->second);
      eager.release(host_id, it->second);
      held.erase(it);
    }
    ASSERT_EQ(lazy.free_count(), eager.free_count()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PoolSequence,
    ::testing::Values(ScaleCase{false, 28, 11}, ScaleCase{true, 28, 12},
                      ScaleCase{false, 24, 13}, ScaleCase{true, 24, 14},
                      ScaleCase{false, 20, 15}, ScaleCase{true, 16, 16},
                      ScaleCase{false, 16, 17}));

// A /8 covers 16.7M addresses; the eager pool allocated all of them up
// front. The lazy pool must construct in O(1) and stay O(churn) while
// handing out leases from the full range.
TEST(PoolScale, HugePoolConstructsLazilyAndLeases) {
  const Prefix prefix(Ipv4::from_octets(26, 0, 0, 0), 8);
  AddressPool pool(AddressClass::kVpn, prefix, false, 99);
  EXPECT_EQ(pool.free_count(), std::size_t{1} << 24);

  std::unordered_set<Ipv4> leased;
  for (std::uint32_t id = 0; id < 10000; ++id) {
    const auto addr = pool.acquire(id);
    ASSERT_TRUE(addr.has_value());
    ASSERT_TRUE(prefix.contains(*addr));
    ASSERT_TRUE(leased.insert(*addr).second)
        << "double lease of " << addr->to_string();
  }
  EXPECT_EQ(pool.free_count(), (std::size_t{1} << 24) - 10000);
  // Release everything; the pool must account for every address again.
  std::uint32_t id = 0;
  for (const Ipv4 addr : leased) pool.release(id++, addr);
  EXPECT_EQ(pool.free_count(), std::size_t{1} << 24);
}

TEST(PoolScale, ExhaustionReturnsNulloptThenRecovers) {
  const Prefix prefix(Ipv4::from_octets(10, 9, 8, 0), 28);  // 16 addrs
  AddressPool pool(AddressClass::kPpp, prefix, false, 7);
  std::vector<Ipv4> leased;
  for (std::uint32_t id = 0; id < 16; ++id) {
    const auto addr = pool.acquire(id);
    ASSERT_TRUE(addr.has_value());
    leased.push_back(*addr);
  }
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_FALSE(pool.acquire(100).has_value());
  pool.release(3, leased[3]);
  const auto again = pool.acquire(200);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, leased[3]);
}

TEST(PoolScale, StickyReacquireSurvivesHeavyChurn) {
  const Prefix prefix(Ipv4::from_octets(10, 40, 0, 0), 20);  // 4096 addrs
  AddressPool pool(AddressClass::kDhcp, prefix, true, 21);
  const auto first = pool.acquire(1);
  ASSERT_TRUE(first.has_value());
  pool.release(1, *first);
  // Churn hundreds of other hosts through the pool between the release
  // and the reacquire; the reservation must hold regardless.
  for (std::uint32_t id = 1000; id < 1500; ++id) {
    ASSERT_TRUE(pool.acquire(id).has_value());
  }
  const auto again = pool.acquire(1);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, *first);
}

}  // namespace
}  // namespace svcdisc::host
