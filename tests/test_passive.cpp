// Unit tests for passive: the service table, the monitor's detection
// rules, and the external-scan detector.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "net/packet.h"
#include "passive/monitor.h"
#include "passive/scan_detector.h"
#include "passive/service_table.h"
#include "util/flat_hash.h"
#include "util/rng.h"

namespace svcdisc::passive {
namespace {

using net::Ipv4;
using net::Packet;
using net::Prefix;
using util::hours;
using util::kEpoch;
using util::minutes;

const Ipv4 kServer = Ipv4::from_octets(128, 125, 1, 1);
const Ipv4 kClient = Ipv4::from_octets(66, 1, 2, 3);
const Prefix kCampus(Ipv4::from_octets(128, 125, 0, 0), 16);

Packet at(Packet p, util::TimePoint t) {
  p.time = t;
  return p;
}

// ---------------------------------------------------------- ServiceTable --

TEST(ServiceTable, FirstDiscoveryWins) {
  ServiceTable table;
  const ServiceKey key{kServer, net::Proto::kTcp, 80};
  EXPECT_TRUE(table.discover(key, kEpoch + minutes(5)));
  EXPECT_FALSE(table.discover(key, kEpoch + minutes(1)));
  const ServiceRecord* record = table.find(key);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->first_seen, kEpoch + minutes(5));
  EXPECT_EQ(table.size(), 1u);
}

TEST(ServiceTable, FlowsAccumulateBeforeDiscovery) {
  ServiceTable table;
  const ServiceKey key{kServer, net::Proto::kTcp, 80};
  table.count_flow(key, kClient, kEpoch);
  table.count_flow(key, kClient, kEpoch + minutes(1));
  table.count_flow(key, Ipv4::from_octets(66, 9, 9, 9), kEpoch + minutes(2));
  EXPECT_FALSE(table.contains(key));
  EXPECT_EQ(table.size(), 0u);
  table.discover(key, kEpoch + minutes(3));
  const ServiceRecord* record = table.find(key);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->flows, 3u);
  EXPECT_EQ(record->clients.size(), 2u);
}

TEST(ServiceTable, LastActivityTracksLatest) {
  ServiceTable table;
  const ServiceKey key{kServer, net::Proto::kTcp, 80};
  table.discover(key, kEpoch + minutes(1));
  table.count_flow(key, kClient, kEpoch + hours(5));
  EXPECT_EQ(table.find(key)->last_activity, kEpoch + hours(5));
}

TEST(ServiceTable, AddressCountCollapsesPorts) {
  ServiceTable table;
  table.discover({kServer, net::Proto::kTcp, 80}, kEpoch);
  table.discover({kServer, net::Proto::kTcp, 22}, kEpoch);
  table.discover({Ipv4::from_octets(128, 125, 2, 2), net::Proto::kTcp, 80},
                 kEpoch);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.address_count(), 2u);
}

TEST(ServiceTable, ChronologicalSorted) {
  ServiceTable table;
  table.discover({kServer, net::Proto::kTcp, 80}, kEpoch + minutes(10));
  table.discover({kServer, net::Proto::kTcp, 22}, kEpoch + minutes(2));
  table.discover({kServer, net::Proto::kTcp, 21}, kEpoch + minutes(30));
  const auto chrono = table.chronological();
  ASSERT_EQ(chrono.size(), 3u);
  EXPECT_EQ(chrono[0].first.port, 22);
  EXPECT_EQ(chrono[1].first.port, 80);
  EXPECT_EQ(chrono[2].first.port, 21);
}

// --------------------------------------------------------- PassiveMonitor --

MonitorConfig selected_config() {
  MonitorConfig cfg;
  cfg.internal_prefixes = {kCampus};
  cfg.tcp_ports = net::selected_tcp_ports();
  return cfg;
}

TEST(PassiveMonitor, SynAckFromInternalDiscoversService) {
  PassiveMonitor monitor(selected_config());
  monitor.observe(at(net::make_tcp(kServer, 80, kClient, 999,
                                   net::flags_syn_ack()),
                     kEpoch + minutes(3)));
  const ServiceKey key{kServer, net::Proto::kTcp, 80};
  ASSERT_TRUE(monitor.table().contains(key));
  EXPECT_EQ(monitor.table().find(key)->first_seen, kEpoch + minutes(3));
}

TEST(PassiveMonitor, SynAloneDoesNotDiscover) {
  PassiveMonitor monitor(selected_config());
  monitor.observe(at(net::make_tcp(kClient, 999, kServer, 80,
                                   net::flags_syn()),
                     kEpoch));
  EXPECT_EQ(monitor.table().size(), 0u);
}

TEST(PassiveMonitor, SynAckFromExternalIgnored) {
  PassiveMonitor monitor(selected_config());
  monitor.observe(at(net::make_tcp(kClient, 80, kServer, 999,
                                   net::flags_syn_ack()),
                     kEpoch));
  EXPECT_EQ(monitor.table().size(), 0u);
}

TEST(PassiveMonitor, UnselectedPortIgnored) {
  PassiveMonitor monitor(selected_config());
  monitor.observe(at(net::make_tcp(kServer, 8080, kClient, 999,
                                   net::flags_syn_ack()),
                     kEpoch));
  EXPECT_EQ(monitor.table().size(), 0u);
}

TEST(PassiveMonitor, AllPortsModeRecordsEverything) {
  MonitorConfig cfg;
  cfg.internal_prefixes = {kCampus};
  PassiveMonitor monitor(cfg);  // empty port list = all ports
  monitor.observe(at(net::make_tcp(kServer, 8080, kClient, 999,
                                   net::flags_syn_ack()),
                     kEpoch));
  EXPECT_EQ(monitor.table().size(), 1u);
}

TEST(PassiveMonitor, InboundSynCountsFlowAndClient) {
  PassiveMonitor monitor(selected_config());
  const ServiceKey key{kServer, net::Proto::kTcp, 80};
  monitor.observe(at(net::make_tcp(kClient, 999, kServer, 80,
                                   net::flags_syn()),
                     kEpoch));
  monitor.observe(at(net::make_tcp(kClient, 1000, kServer, 80,
                                   net::flags_syn()),
                     kEpoch + minutes(1)));
  monitor.observe(at(net::make_tcp(kServer, 80, kClient, 999,
                                   net::flags_syn_ack()),
                     kEpoch + minutes(2)));
  const ServiceRecord* record = monitor.table().find(key);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->flows, 2u);
  EXPECT_EQ(record->clients.size(), 1u);
}

TEST(PassiveMonitor, UdpWellKnownSourceDiscovers) {
  MonitorConfig cfg;
  cfg.internal_prefixes = {kCampus};
  cfg.detect_udp = true;
  cfg.udp_ports = net::selected_udp_ports();
  PassiveMonitor monitor(cfg);
  monitor.observe(at(net::make_udp(kServer, 53, kClient, 999, 64), kEpoch));
  EXPECT_TRUE(
      monitor.table().contains({kServer, net::Proto::kUdp, 53}));
  // Client->server UDP counts a flow but does not discover.
  monitor.observe(at(net::make_udp(kClient, 999, kServer, 137, 64), kEpoch));
  EXPECT_FALSE(
      monitor.table().contains({kServer, net::Proto::kUdp, 137}));
}

TEST(PassiveMonitor, UdpDisabledByDefault) {
  PassiveMonitor monitor(selected_config());
  monitor.observe(at(net::make_udp(kServer, 53, kClient, 999, 64), kEpoch));
  EXPECT_EQ(monitor.table().size(), 0u);
}

TEST(PassiveMonitor, DiscoveryCallbackFires) {
  PassiveMonitor monitor(selected_config());
  int calls = 0;
  monitor.on_discovery = [&](const ServiceKey& key, util::TimePoint) {
    ++calls;
    EXPECT_EQ(key.port, 80);
  };
  const Packet synack =
      net::make_tcp(kServer, 80, kClient, 999, net::flags_syn_ack());
  monitor.observe(at(synack, kEpoch));
  monitor.observe(at(synack, kEpoch + minutes(1)));  // duplicate
  EXPECT_EQ(calls, 1);
}

// ------------------------------------------------------------ ScanDetector

ScanDetectorConfig tight_config() {
  ScanDetectorConfig cfg;
  cfg.target_threshold = 10;
  cfg.rst_threshold = 10;
  cfg.window = hours(12);
  return cfg;
}

TEST(ScanDetector, FlagsWideScanner) {
  ScanDetector detector(tight_config(), {kCampus});
  const Ipv4 scanner = Ipv4::from_octets(7, 7, 7, 7);
  for (std::uint32_t i = 0; i < 10; ++i) {
    const Ipv4 target = Ipv4::from_octets(128, 125, 1, static_cast<uint8_t>(i));
    detector.observe(at(net::make_tcp(scanner, 1, target, 22,
                                      net::flags_syn()),
                        kEpoch + minutes(i)));
    detector.observe(at(net::make_tcp(target, 22, scanner, 1,
                                      net::flags_rst()),
                        kEpoch + minutes(i)));
  }
  EXPECT_TRUE(detector.is_scanner(scanner));
  EXPECT_EQ(detector.scanner_count(), 1u);
}

TEST(ScanDetector, RequiresBothThresholds) {
  ScanDetector detector(tight_config(), {kCampus});
  const Ipv4 scanner = Ipv4::from_octets(7, 7, 7, 7);
  // 20 SYNs but no RST responses (every port open or silent).
  for (std::uint32_t i = 0; i < 20; ++i) {
    detector.observe(at(net::make_tcp(scanner, 1,
                                      Ipv4::from_octets(128, 125, 2,
                                                        static_cast<uint8_t>(i)),
                                      22, net::flags_syn()),
                        kEpoch));
  }
  EXPECT_FALSE(detector.is_scanner(scanner));
}

TEST(ScanDetector, NormalClientNotFlagged) {
  ScanDetector detector(tight_config(), {kCampus});
  // One client talking to one server repeatedly.
  for (int i = 0; i < 100; ++i) {
    detector.observe(at(net::make_tcp(kClient, 1, kServer, 80,
                                      net::flags_syn()),
                        kEpoch + minutes(i)));
  }
  EXPECT_FALSE(detector.is_scanner(kClient));
}

TEST(ScanDetector, WindowResetsCounts) {
  ScanDetector detector(tight_config(), {kCampus});
  const Ipv4 scanner = Ipv4::from_octets(7, 7, 7, 7);
  // 6 targets in window 0, 6 more in window 2: never 10 in one window.
  for (std::uint32_t i = 0; i < 6; ++i) {
    const Ipv4 target = Ipv4::from_octets(128, 125, 3, static_cast<uint8_t>(i));
    detector.observe(at(net::make_tcp(scanner, 1, target, 22,
                                      net::flags_syn()),
                        kEpoch + minutes(i)));
    detector.observe(at(net::make_tcp(target, 22, scanner, 1,
                                      net::flags_rst()),
                        kEpoch + minutes(i)));
  }
  for (std::uint32_t i = 0; i < 6; ++i) {
    const Ipv4 target =
        Ipv4::from_octets(128, 125, 4, static_cast<uint8_t>(i));
    detector.observe(at(net::make_tcp(scanner, 1, target, 22,
                                      net::flags_syn()),
                        kEpoch + hours(25) + minutes(i)));
    detector.observe(at(net::make_tcp(target, 22, scanner, 1,
                                      net::flags_rst()),
                        kEpoch + hours(25) + minutes(i)));
  }
  EXPECT_FALSE(detector.is_scanner(scanner));
}

TEST(ScanDetector, InternalSourcesNeverFlagged) {
  ScanDetector detector(tight_config(), {kCampus});
  const Ipv4 internal_scanner = Ipv4::from_octets(128, 125, 9, 9);
  for (std::uint32_t i = 0; i < 30; ++i) {
    const Ipv4 target = Ipv4::from_octets(128, 125, 5, static_cast<uint8_t>(i));
    detector.observe(at(net::make_tcp(internal_scanner, 1, target, 22,
                                      net::flags_syn()),
                        kEpoch));
    detector.observe(at(net::make_tcp(target, 22, internal_scanner, 1,
                                      net::flags_rst()),
                        kEpoch));
  }
  EXPECT_FALSE(detector.is_scanner(internal_scanner));
}

TEST(PassiveMonitor, ScannerExclusionSuppressesDiscovery) {
  MonitorConfig cfg = selected_config();
  cfg.exclude_scanner_triggered = true;
  PassiveMonitor monitor(cfg);
  auto detector =
      std::make_shared<ScanDetector>(tight_config(),
                                     std::vector<Prefix>{kCampus});
  monitor.set_scan_detector(detector);

  const Ipv4 scanner = Ipv4::from_octets(7, 7, 7, 7);
  // Scanner sweeps: targets RST back, crossing both thresholds.
  for (std::uint32_t i = 0; i < 12; ++i) {
    const Ipv4 target = Ipv4::from_octets(128, 125, 6, static_cast<uint8_t>(i));
    monitor.observe(at(net::make_tcp(scanner, 1, target, 80,
                                     net::flags_syn()),
                       kEpoch + minutes(i)));
    monitor.observe(at(net::make_tcp(target, 80, scanner, 1,
                                     net::flags_rst()),
                       kEpoch + minutes(i)));
  }
  ASSERT_TRUE(detector->is_scanner(scanner));
  // A server now answers the flagged scanner: suppressed.
  monitor.observe(at(net::make_tcp(kServer, 80, scanner, 1,
                                   net::flags_syn_ack()),
                     kEpoch + minutes(20)));
  EXPECT_EQ(monitor.table().size(), 0u);
  EXPECT_EQ(monitor.discoveries_suppressed(), 1u);
  // The same server answering a genuine client is recorded.
  monitor.observe(at(net::make_tcp(kServer, 80, kClient, 1,
                                   net::flags_syn_ack()),
                     kEpoch + minutes(21)));
  EXPECT_EQ(monitor.table().size(), 1u);
}

// --------------------------------------- retroactive scanner cleaning --

TEST(ServiceRecord, LastFlowExcludingCleansRetroactivelyFlaggedScanners) {
  ServiceTable table;
  const ServiceKey key{kServer, net::Proto::kTcp, 80};
  const Ipv4 scanner = Ipv4::from_octets(7, 7, 7, 7);
  const Ipv4 genuine = Ipv4::from_octets(66, 1, 2, 3);
  table.count_flow(key, genuine, kEpoch + minutes(10));
  table.count_flow(key, scanner, kEpoch + minutes(30));  // latest overall
  const ServiceRecord* record = [&] {
    table.discover(key, kEpoch + minutes(1));
    return table.find(key);
  }();
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->last_flow, kEpoch + minutes(30));

  util::FlatSet<Ipv4> exclude;
  // Nothing excluded: fast path returns last_flow directly.
  EXPECT_EQ(record->last_flow_excluding(exclude), kEpoch + minutes(30));
  // Scanner flagged after the fact: its flow no longer counts.
  exclude.insert(scanner);
  EXPECT_EQ(record->last_flow_excluding(exclude), kEpoch + minutes(10));
  // Every client excluded: no genuine flow remains.
  exclude.insert(genuine);
  EXPECT_EQ(record->last_flow_excluding(exclude), util::TimePoint{});
}

TEST(ServiceRecord, LastFlowExcludingFastPathMatchesScan) {
  // The maintained last_flow_client must track ties and updates: make
  // the latest flow come from a genuine client and exclude the scanner.
  ServiceTable table;
  const ServiceKey key{kServer, net::Proto::kTcp, 80};
  const Ipv4 scanner = Ipv4::from_octets(7, 7, 7, 7);
  const Ipv4 genuine = Ipv4::from_octets(66, 1, 2, 3);
  table.count_flow(key, scanner, kEpoch + minutes(5));
  table.count_flow(key, genuine, kEpoch + minutes(5));  // tie: later wins
  table.discover(key, kEpoch);
  util::FlatSet<Ipv4> exclude;
  exclude.insert(scanner);
  EXPECT_EQ(table.find(key)->last_flow_excluding(exclude),
            kEpoch + minutes(5));
}

// ------------------------------------------- batch/single equivalence --

// Random border-crossing traffic mix covering every monitor rule:
// internal SYN-ACKs (discovery), external SYNs (flows + scan detector
// targets), outbound RSTs (scan detector), UDP from well-known ports.
std::vector<Packet> equivalence_traffic(std::uint64_t seed, int count) {
  util::Rng rng(seed);
  std::vector<Packet> packets;
  packets.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const Ipv4 internal =
        Ipv4::from_octets(128, 125, 6, static_cast<std::uint8_t>(rng.below(8)));
    const Ipv4 external =
        Ipv4::from_octets(7, 7, 7, static_cast<std::uint8_t>(rng.below(4)));
    Packet p;
    switch (rng.below(5)) {
      case 0:
        p = net::make_tcp(internal, 80, external, 999, net::flags_syn_ack());
        break;
      case 1:
        p = net::make_tcp(external, 999, internal, 80, net::flags_syn());
        break;
      case 2:
        p = net::make_tcp(internal, 80, external, 999, net::flags_rst());
        break;
      case 3:
        p = net::make_udp(internal, 53, external, 999, 64);
        break;
      default:
        p = net::make_tcp(external, 999, internal, 22, net::flags_syn());
        break;
    }
    // Coarse timestamps so some packets share a time, as batching does.
    p.time = kEpoch + minutes(i / 4);
    packets.push_back(p);
  }
  return packets;
}

PassiveMonitor make_equivalence_monitor() {
  MonitorConfig cfg = selected_config();
  cfg.detect_udp = true;
  cfg.udp_ports = net::selected_udp_ports();
  cfg.exclude_scanner_triggered = true;
  PassiveMonitor monitor(cfg);
  ScanDetectorConfig scan_cfg;
  scan_cfg.target_threshold = 4;
  scan_cfg.rst_threshold = 4;
  monitor.set_scan_detector(std::make_shared<ScanDetector>(
      scan_cfg, std::vector<Prefix>{kCampus}));
  return monitor;
}

TEST(PassiveMonitor, BatchDeliveryEquivalentToPerPacket) {
  const std::vector<Packet> traffic = equivalence_traffic(0xBA7C4, 600);

  PassiveMonitor single = make_equivalence_monitor();
  for (const Packet& p : traffic) single.observe(p);

  PassiveMonitor batched = make_equivalence_monitor();
  util::Rng rng(0x51CE5);
  std::size_t i = 0;
  while (i < traffic.size()) {
    const std::size_t n =
        std::min(traffic.size() - i, 1 + rng.below(7));
    batched.observe_batch(
        std::span<const Packet>(traffic.data() + i, n));
    i += n;
  }

  EXPECT_EQ(batched.packets_seen(), single.packets_seen());
  EXPECT_EQ(batched.discoveries_suppressed(),
            single.discoveries_suppressed());
  EXPECT_EQ(batched.scan_detector()->scanner_count(),
            single.scan_detector()->scanner_count());
  ASSERT_EQ(batched.table().size(), single.table().size());
  single.table().for_each([&](const ServiceKey& key,
                              const ServiceRecord& expect) {
    const ServiceRecord* got = batched.table().find(key);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->first_seen, expect.first_seen);
    EXPECT_EQ(got->last_activity, expect.last_activity);
    EXPECT_EQ(got->last_flow, expect.last_flow);
    EXPECT_EQ(got->flows, expect.flows);
    EXPECT_EQ(got->clients.size(), expect.clients.size());
  });
}

}  // namespace
}  // namespace svcdisc::passive
