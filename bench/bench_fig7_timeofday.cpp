// Figure 7: comparison of network scanning at different times of day and
// frequencies — replaying subsets of the 35 scans (11:00 "day" scans,
// 23:00 "night" scans, alternating, all) against the full-campaign
// ground truth.
#include <cstdio>

#include "analysis/export.h"
#include "analysis/table.h"
#include "bench_common.h"
#include "core/report.h"
#include "core/weighted.h"

namespace svcdisc {

int run() {
  auto campaign = bench::make_campaign(workload::CampusConfig::dtcp1_18d(),
                                       bench::dtcp1_engine_config());
  bench::print_header("Figure 7: scan time-of-day and frequency (DTCP1-18d)",
                      campaign);

  bench::Stopwatch watch;
  campaign.e().run();
  watch.report("DTCP1-18d campaign");

  const auto end = util::kEpoch + campaign.c().config().duration;
  // Ground truth: full passive + all 35 scans (the paper's baseline).
  std::unordered_set<net::Ipv4> truth;
  for (const auto& [addr, t] :
       core::address_discovery_times(campaign.e().monitor().table(), end)) {
    truth.insert(addr);
  }
  const auto all_active = core::address_times_from_scans(
      campaign.e().prober().scans(), nullptr);
  for (const auto& [addr, t] : all_active) truth.insert(addr);
  const double denom = static_cast<double>(truth.size());

  // Scans alternate 11:00 (even index) / 23:00 (odd index).
  struct Subset {
    const char* name;
    std::function<bool(const active::ScanRecord&)> pred;
  };
  const Subset subsets[] = {
      {"every 24h day (11:00)",
       [](const active::ScanRecord& s) { return s.index % 2 == 0; }},
      {"every 24h night (23:00)",
       [](const active::ScanRecord& s) { return s.index % 2 == 1; }},
      {"alternating day/night",
       [](const active::ScanRecord& s) { return s.index % 4 < 2 ? s.index % 4 == 0 : s.index % 4 == 3; }},
      {"every 12h (all 35)", [](const active::ScanRecord&) { return true; }},
  };

  analysis::TextTable table({"schedule", "scans", "servers found",
                             "% of ground truth"});
  std::vector<analysis::StepCurve> curves;
  std::vector<std::unordered_set<net::Ipv4>> found_sets;
  for (const Subset& subset : subsets) {
    const auto times = core::address_times_from_scans(
        campaign.e().prober().scans(), subset.pred);
    int scan_count = 0;
    for (const auto& scan : campaign.e().prober().scans()) {
      scan_count += subset.pred(scan);
    }
    std::unordered_set<net::Ipv4> found;
    for (const auto& [addr, t] : times) found.insert(addr);
    found_sets.push_back(found);
    table.add_row({subset.name, std::to_string(scan_count),
                   analysis::fmt_count(found.size()),
                   analysis::fmt_pct(100.0 * static_cast<double>(found.size()) /
                                     denom)});
    curves.push_back(core::discovery_curve(times));
  }
  std::fputs(table.render().c_str(), stdout);

  // Day-vs-night asymmetry (paper: night finds 232 servers day misses;
  // day finds 325 night misses).
  std::uint64_t day_only = 0, night_only = 0;
  for (const net::Ipv4 addr : found_sets[0]) {
    day_only += !found_sets[1].contains(addr);
  }
  for (const net::Ipv4 addr : found_sets[1]) {
    night_only += !found_sets[0].contains(addr);
  }
  std::printf(
      "\nday-only finds %s servers night misses; night-only finds %s day\n"
      "misses (paper: 325 and 232: diurnal availability favors daytime).\n"
      "halving frequency to 24 h costs %.0f%% of completeness (paper: 8%%).\n",
      analysis::fmt_count(day_only).c_str(),
      analysis::fmt_count(night_only).c_str(),
      100.0 * static_cast<double>(found_sets[3].size() -
                                  std::max(found_sets[0].size(),
                                           found_sets[2].size())) /
          denom);

  analysis::export_figure("fig7_timeofday", "Figure 7: scan time-of-day and frequency",
                       {{"day_24h", &curves[0], denom},
                        {"night_24h", &curves[1], denom},
                        {"alternating", &curves[2], denom},
                        {"every_12h", &curves[3], denom}},
                       util::kEpoch, end, 18 * 4, campaign.c().calendar());
  std::printf("series written to fig7_timeofday.tsv (+ fig7_timeofday.gp)\n");
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
