// Ablation: address churn vs. actual hosts.
//
// The paper can only speculate about how much transient-block "server
// discovery" is really address reuse: "this discovery may represent a
// small number of hosts simply moving to different addresses rather than
// a large number of actual hosts" (§4.4.2). Our simulator knows the
// host behind every address at every instant, so this bench answers the
// question: per transience class, how many distinct *addresses* were
// discovered vs how many distinct *hosts* they correspond to.
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "analysis/table.h"
#include "bench_common.h"
#include "core/report.h"

namespace svcdisc {

int run() {
  auto campaign = bench::make_campaign(workload::CampusConfig::dtcp1_18d(),
                                       bench::dtcp1_engine_config());
  bench::print_header(
      "Ablation: discovered addresses vs actual hosts (DTCP1-18d)",
      campaign);

  // Resolve each discovery to the host holding the address *at that
  // moment* — afterwards the lease may move.
  auto* campus = campaign.campus.get();
  std::unordered_map<net::Ipv4, host::HostId> discovered_host;
  const auto resolve = [&](const passive::ServiceKey& key, util::TimePoint) {
    if (discovered_host.contains(key.addr)) return;
    if (host::Host* h = campus->host_at(key.addr)) {
      discovered_host[key.addr] = h->id();
    }
  };
  campaign.e().monitor().on_discovery = resolve;
  campaign.e().prober().on_discovery = resolve;

  bench::Stopwatch watch;
  campaign.e().run();
  watch.report("DTCP1-18d campaign");

  struct Tally {
    std::unordered_set<net::Ipv4> addresses;
    std::unordered_set<host::HostId> hosts;
  };
  std::unordered_map<host::AddressClass, Tally> tallies;
  for (const auto& [addr, host_id] : discovered_host) {
    Tally& tally = tallies[campus->class_of(addr)];
    tally.addresses.insert(addr);
    tally.hosts.insert(host_id);
  }

  analysis::TextTable table({"class", "server addresses", "actual hosts",
                             "addresses per host"});
  const host::AddressClass classes[] = {
      host::AddressClass::kStatic, host::AddressClass::kDhcp,
      host::AddressClass::kPpp, host::AddressClass::kVpn};
  for (const auto cls : classes) {
    const Tally& tally = tallies[cls];
    const double ratio =
        tally.hosts.empty()
            ? 0.0
            : static_cast<double>(tally.addresses.size()) /
                  static_cast<double>(tally.hosts.size());
    table.add_row({std::string(host::address_class_name(cls)),
                   analysis::fmt_count(tally.addresses.size()),
                   analysis::fmt_count(tally.hosts.size()),
                   analysis::fmt_double(ratio, 2)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nanswer to the paper's open question: the sticky DHCP block is\n"
      "nearly 1:1 (residence-hall semester leases), while PPP's non-sticky\n"
      "pool inflates address counts well above the real host population —\n"
      "so transient-block 'server births' are substantially address reuse,\n"
      "exactly as the paper suspected but could not verify.\n");
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
