// Figure 5: server discovery grouped by transience of address block
// (DHCP, PPP, VPN), as percent of each block's union ground truth
// (DTCP1-18d-trans).
#include <cstdio>

#include "analysis/export.h"
#include "analysis/table.h"
#include "bench_common.h"
#include "core/completeness.h"
#include "core/report.h"
#include "core/weighted.h"

namespace svcdisc {

int run() {
  auto campaign = bench::make_campaign(workload::CampusConfig::dtcp1_18d(),
                                       bench::dtcp1_engine_config());
  bench::print_header(
      "Figure 5: discovery by address transience (DTCP1-18d-trans)",
      campaign);

  bench::Stopwatch watch;
  campaign.e().run();
  watch.report("DTCP1-18d campaign");

  const auto end = util::kEpoch + campaign.c().config().duration;
  auto* campus = campaign.campus.get();

  struct Block {
    const char* name;
    host::AddressClass cls;
  };
  const Block blocks[] = {{"DHCP", host::AddressClass::kDhcp},
                          {"PPP", host::AddressClass::kPpp},
                          {"VPN", host::AddressClass::kVpn}};

  analysis::TextTable table({"block", "union", "Active", "Passive",
                             "Active %", "Passive %"});
  std::vector<analysis::StepCurve> curves;
  std::vector<std::string> names;
  std::vector<double> denominators;

  for (const Block& block : blocks) {
    core::ServiceFilter filter;
    const auto cls = block.cls;
    filter.address_pred = [campus, cls](net::Ipv4 addr) {
      return campus->class_of(addr) == cls;
    };
    const auto p_times = core::address_discovery_times(
        campaign.e().monitor().table(), end, filter);
    const auto a_times = core::address_times_from_scans(
        campaign.e().prober().scans(), nullptr, filter);
    std::unordered_set<net::Ipv4> p_set, a_set;
    for (const auto& [addr, t] : p_times) p_set.insert(addr);
    for (const auto& [addr, t] : a_times) a_set.insert(addr);
    const auto c = core::completeness(p_set, a_set);
    table.add_row({block.name, analysis::fmt_count(c.union_count),
                   analysis::fmt_count(c.active_total),
                   analysis::fmt_count(c.passive_total),
                   analysis::fmt_pct(c.active_pct()),
                   analysis::fmt_pct(c.passive_pct())});

    curves.push_back(core::discovery_curve(a_times));
    names.push_back(std::string("active_") + block.name);
    denominators.push_back(static_cast<double>(c.union_count));
    curves.push_back(core::discovery_curve(p_times));
    names.push_back(std::string("passive_") + block.name);
    denominators.push_back(static_cast<double>(c.union_count));
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\npaper shape checks: DHCP mirrors the overall result (sticky\n"
      "residence-hall leases); PPP is the inversion where passive finds\n"
      "~15%% more than active (short online windows between scans); VPN\n"
      "is found actively (~100 servers) but almost never passively (~10):\n"
      "tunnel addresses carry no client traffic past the tap.\n");

  std::vector<analysis::NamedCurve> named;
  for (std::size_t i = 0; i < curves.size(); ++i) {
    named.push_back({names[i], &curves[i], denominators[i]});
  }
  analysis::export_figure("fig5_transient", "Figure 5: discovery by address transience", named, util::kEpoch, end,
                       18 * 8, campaign.c().calendar());
  std::printf("series written to fig5_transient.tsv (+ fig5_transient.gp)\n");
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
