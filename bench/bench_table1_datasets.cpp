// Table 1: the dataset inventory. Regenerated from the scenario presets
// so the printed parameters are exactly what every other bench runs.
#include <cstdio>

#include "analysis/table.h"
#include "bench_common.h"

namespace svcdisc {
namespace {

struct DatasetRow {
  const char* name;
  workload::CampusConfig cfg;
  const char* scans;
  const char* services;
};

std::string start_date(const workload::CampusConfig& cfg) {
  const util::Calendar cal(cfg.cal_year, cfg.cal_month, cfg.cal_day,
                           cfg.cal_hour);
  return cal.month_day(util::kEpoch) + "-" + std::to_string(cfg.cal_year);
}

std::size_t address_count(const workload::CampusConfig& cfg) {
  std::size_t n = cfg.static_addresses;
  if (cfg.transient_blocks) {
    n += 256 + 1024 + 512;  // VPN + DHCP + PPP
    if (cfg.include_wireless_in_scan) n += 512;
  }
  return n;
}

}  // namespace

int run() {
  std::printf("== Table 1: list of datasets ==\n\n");
  const DatasetRow rows[] = {
      {"DTCP1-12h", workload::CampusConfig::dtcp1_18d(), "once",
       "TCP/selected"},
      {"DTCP1-18d", workload::CampusConfig::dtcp1_18d(), "every 12 hrs",
       "TCP/selected"},
      {"DTCP1-90d", workload::CampusConfig::dtcp1_90d(), "-", "TCP/selected"},
      {"DTCPbreak", workload::CampusConfig::dtcp_break(), "every 12 hrs",
       "TCP/selected"},
      {"DTCPall", workload::CampusConfig::dtcp_all(), "once", "TCP/all"},
      {"DUDP", workload::CampusConfig::dudp(), "once", "UDP/selected"},
  };

  analysis::TextTable table({"Dataset", "Start", "Duration", "Scans",
                             "Services", "Addresses"});
  for (const DatasetRow& row : rows) {
    char duration[32];
    const double days = row.cfg.duration.days();
    if (days >= 1.0) {
      std::snprintf(duration, sizeof duration, "%.0f days", days);
    } else {
      std::snprintf(duration, sizeof duration, "%.0f hours",
                    row.cfg.duration.hours());
    }
    // DTCP1-12h reuses the 18-d scenario, truncated.
    if (std::string(row.name) == "DTCP1-12h") {
      std::snprintf(duration, sizeof duration, "12 hours");
    }
    table.add_row({row.name, start_date(row.cfg), duration, row.scans,
                   row.services,
                   analysis::fmt_count(address_count(row.cfg))});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\npaper reference: DTCP1 family covers 16,130 addresses (13,826\n"
      "static + VPN /24 + DHCP /22 + PPP /23 + wireless /23; wireless is\n"
      "in the address space but was not probeable); DTCPall covers one\n"
      "/24 (256); DUDP covers the /16 for one day.\n");
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
