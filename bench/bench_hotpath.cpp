// Hot-path benchmark suite: self-timed measurements of the four
// per-packet hot paths (event queue, tap+monitor delivery, filter
// evaluation, per-packet tables) plus a whole-campaign throughput
// figure, emitted as machine-readable JSON so the perf trajectory is
// tracked across commits (see README "Hot-path benchmarks").
//
// Knobs:
//   SVCDISC_BENCH_SMOKE=1        tiny iteration counts (ctest smoke)
//   SVCDISC_BENCH_OUT=path       output JSON path (default BENCH_hotpath.json)
//   SVCDISC_BASELINE_JSON=path   baseline JSON to embed + compute speedups
//   SVCDISC_BENCH_SHARD_SWEEP=0  skip the campaign_pps_t{1,2,4,8} sweep
//                                (scripts/bench.sh sets this on hosts with
//                                fewer than 8 cores, where the figures
//                                measure the host, not the code)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/streaming.h"
#include "capture/filter.h"
#include "capture/tap.h"
#include "core/campaign_runner.h"
#include "net/packet.h"
#include "passive/monitor.h"
#include "passive/scan_detector.h"
#include "passive/service_table.h"
#include "sim/event_queue.h"
#include "util/flat_hash.h"
#include "util/rng.h"
#include "util/sim_time.h"
#include "util/sketch.h"
#include "workload/campus.h"

namespace svcdisc {
namespace {

using net::Ipv4;
using net::Packet;

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool smoke() {
  const char* env = std::getenv("SVCDISC_BENCH_SMOKE");
  return env && *env && std::strcmp(env, "0") != 0;
}

/// Best-of-3 wall time for `fn()` (1 rep in smoke mode).
template <typename Fn>
double best_of(Fn&& fn) {
  const int reps = smoke() ? 1 : 3;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_sec();
    fn();
    const double dt = now_sec() - t0;
    if (dt < best) best = dt;
  }
  return best;
}

/// A deterministic border-crossing traffic mix: inbound SYNs, outbound
/// SYN-ACKs, UDP datagrams, and the occasional ICMP — the shape a tap
/// actually sees.
std::vector<Packet> make_traffic_mix(std::size_t n) {
  std::vector<Packet> mix;
  mix.reserve(n);
  util::Rng rng(0xB0B0);
  const Ipv4 campus_base = Ipv4::from_octets(128, 125, 0, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Ipv4 internal(campus_base.value() +
                        static_cast<std::uint32_t>(rng.below(16384)));
    const Ipv4 external(0x42000000u +
                        static_cast<std::uint32_t>(rng.below(1u << 20)));
    Packet p;
    switch (rng.below(8)) {
      case 0:  // service answering: SYN-ACK out
      case 1:
        p = net::make_tcp(internal, 80, external, 40000, net::flags_syn_ack());
        break;
      case 2:  // client flow: SYN in
      case 3:
      case 4:
        p = net::make_tcp(external, 41000, internal, 80, net::flags_syn());
        break;
      case 5:  // refused connection
        p = net::make_tcp(internal, 22, external, 42000, net::flags_rst());
        break;
      case 6:  // UDP datagram toward campus
        p = net::make_udp(external, 53000, internal, 53, 64);
        break;
      default:  // data packet the paper filter rejects
        p = net::make_tcp(external, 45000, internal, 80, net::flags_ack());
        break;
    }
    p.time = util::kEpoch + util::usec(static_cast<std::int64_t>(i));
    mix.push_back(p);
  }
  return mix;
}

// -------------------------------------------------------- event queue --

double bench_event_queue(std::size_t total) {
  sim::EventQueue queue;
  util::Rng rng(1);
  std::uint64_t drained = 0;
  const double dt = best_of([&] {
    for (std::size_t i = 0; i < total; i += 64) {
      for (int j = 0; j < 64; ++j) {
        queue.push(
            util::TimePoint{static_cast<std::int64_t>(rng.below(1u << 20))},
            [&drained] { ++drained; });
      }
      while (!queue.empty()) queue.pop().fire();
    }
  });
  if (drained == 0) std::abort();  // keep the work observable
  return static_cast<double>(total) / dt;
}

// ------------------------------------------------- tap + monitor path --

passive::MonitorConfig monitor_config() {
  passive::MonitorConfig cfg;
  cfg.internal_prefixes = {
      net::Prefix(Ipv4::from_octets(128, 125, 0, 0), 16)};
  cfg.detect_udp = true;
  return cfg;
}

double bench_tap_monitor(const std::vector<Packet>& mix, std::size_t total) {
  const double dt = best_of([&] {
    capture::Tap tap("bench");
    tap.set_filter(capture::Tap::paper_default_filter());
    passive::PassiveMonitor monitor(monitor_config());
    auto detector = std::make_shared<passive::ScanDetector>(
        passive::ScanDetectorConfig{}, monitor_config().internal_prefixes);
    monitor.set_scan_detector(detector);
    tap.add_consumer(&monitor);
    for (std::size_t i = 0; i < total; ++i) {
      tap.observe(mix[i % mix.size()]);
    }
  });
  return static_cast<double>(total) / dt;
}

/// Same pipeline via the batched entry point, the shape coalesced
/// simulator deliveries take — isolates the batching win from the
/// filter/table wins.
double bench_tap_monitor_batch(const std::vector<Packet>& mix,
                               std::size_t total) {
  constexpr std::size_t kBatch = 64;
  const double dt = best_of([&] {
    capture::Tap tap("bench");
    tap.set_filter(capture::Tap::paper_default_filter());
    passive::PassiveMonitor monitor(monitor_config());
    auto detector = std::make_shared<passive::ScanDetector>(
        passive::ScanDetectorConfig{}, monitor_config().internal_prefixes);
    monitor.set_scan_detector(detector);
    tap.add_consumer(&monitor);
    for (std::size_t i = 0; i + kBatch <= total; i += kBatch) {
      const std::size_t off = i % (mix.size() - kBatch);
      tap.observe_batch(
          std::span<const Packet>(mix.data() + off, kBatch));
    }
  });
  return static_cast<double>(total) / dt;
}

// -------------------------------------------------------------- filter --

double bench_filter_ns(const capture::Filter& filter,
                       const std::vector<Packet>& mix, std::size_t total) {
  std::size_t hits = 0;
  const double dt = best_of([&] {
    hits = 0;
    for (std::size_t i = 0; i < total; ++i) {
      hits += filter.matches(mix[i % mix.size()]);
    }
  });
  if (hits > total) std::abort();
  return dt / static_cast<double>(total) * 1e9;
}

// -------------------------------------------------------------- tables --

double bench_service_table(const std::vector<Packet>& mix,
                           std::size_t total) {
  const double dt = best_of([&] {
    passive::ServiceTable table;
    for (std::size_t i = 0; i < total; ++i) {
      const Packet& p = mix[i % mix.size()];
      const passive::ServiceKey key{p.dst, p.proto, p.dport};
      if (i % 4 == 0) {
        table.discover({p.src, p.proto, p.sport},
                       util::kEpoch + util::usec(static_cast<std::int64_t>(i)));
      } else {
        table.count_flow(key, p.src,
                         util::kEpoch + util::usec(static_cast<std::int64_t>(i)));
      }
      if (i % 8 == 0) (void)table.find(key);
    }
  });
  return static_cast<double>(total) / dt;
}

/// Tap + monitor + streaming analytics: the per-packet cost of the
/// sketch-fed observer chain when --streaming is on. The plain
/// tap_monitor_pps figure above runs without a streaming consumer, which
/// is the assertion that disabled streaming leaves the default hot path
/// holding its baseline.
double bench_tap_monitor_stream(const std::vector<Packet>& mix,
                                std::size_t total) {
  const double dt = best_of([&] {
    capture::Tap tap("bench");
    tap.set_filter(capture::Tap::paper_default_filter());
    passive::PassiveMonitor monitor(monitor_config());
    auto detector = std::make_shared<passive::ScanDetector>(
        passive::ScanDetectorConfig{}, monitor_config().internal_prefixes);
    monitor.set_scan_detector(detector);
    analysis::StreamingConfig stream_cfg;
    stream_cfg.internal_prefixes = monitor_config().internal_prefixes;
    stream_cfg.detect_udp = true;
    analysis::StreamingAnalytics stream(stream_cfg);
    stream.set_scan_detector(detector);
    tap.add_consumer(&monitor);
    tap.add_consumer(&stream);
    for (std::size_t i = 0; i < total; ++i) {
      tap.observe(mix[i % mix.size()]);
    }
  });
  return static_cast<double>(total) / dt;
}

// ----------------------------------------------------------- sketches --

double bench_hll_add_ns(std::size_t total) {
  util::HyperLogLog hll(14);
  const double dt = best_of([&] {
    for (std::size_t i = 0; i < total; ++i) {
      hll.add(util::hash_mix(i));
    }
  });
  if (hll.count() == 0) std::abort();  // keep the work observable
  return dt / static_cast<double>(total) * 1e9;
}

double bench_cms_add_ns(std::size_t total) {
  util::CountMinSketch cms(4096, 4);
  const double dt = best_of([&] {
    for (std::size_t i = 0; i < total; ++i) {
      cms.add(util::hash_mix(i % 4096));
    }
  });
  if (cms.total() == 0) std::abort();
  return dt / static_cast<double>(total) * 1e9;
}

double bench_scan_detector(const std::vector<Packet>& mix,
                           std::size_t total) {
  const double dt = best_of([&] {
    passive::ScanDetector detector(passive::ScanDetectorConfig{},
                                   monitor_config().internal_prefixes);
    for (std::size_t i = 0; i < total; ++i) {
      detector.observe(mix[i % mix.size()]);
    }
  });
  return static_cast<double>(total) / dt;
}

// ------------------------------------------------------ whole campaign --

struct CampaignFigures {
  double wall_sec{0};
  double packets_per_sec{0};
  double events_per_sec{0};
};

CampaignFigures bench_campaign() {
  auto campus_cfg = workload::CampusConfig::tiny();
  campus_cfg.duration = smoke() ? util::hours(6) : util::days(4);
  core::EngineConfig engine_cfg;
  engine_cfg.scan_count = smoke() ? 1 : 6;
  engine_cfg.scan_period = util::hours(12);
  engine_cfg.first_scan_offset = util::hours(1);
  const std::size_t seeds = smoke() ? 1 : 4;

  CampaignFigures fig;
  double tap_packets = 0, events = 0;
  fig.wall_sec = best_of([&] {
    const auto results = core::CampaignRunner(1).run(
        core::seed_sweep_jobs(campus_cfg, engine_cfg, 1, seeds));
    tap_packets = events = 0;
    for (const auto& r : results) {
      for (const auto& v : r.snapshot.values()) {
        if (v.name.rfind("tap.", 0) == 0 && v.name.size() > 13 &&
            v.name.compare(v.name.size() - 13, 13, ".packets_seen") == 0) {
          tap_packets += v.value;
        }
      }
      events += r.snapshot.value_of("sim.events_processed");
    }
  });
  fig.packets_per_sec = tap_packets / fig.wall_sec;
  fig.events_per_sec = events / fig.wall_sec;
  return fig;
}

/// One single-seed campaign at `threads` engine shards — the
/// intra-campaign parallelism figure (serial simulator producer, sharded
/// passive monitors, deterministic merge; DESIGN.md §13). Same workload
/// at every thread count, so figures divide into speedups directly.
double bench_campaign_sharded(std::size_t threads) {
  auto campus_cfg = workload::CampusConfig::tiny();
  campus_cfg.duration = smoke() ? util::hours(6) : util::days(4);
  core::EngineConfig engine_cfg;
  engine_cfg.scan_count = smoke() ? 1 : 6;
  engine_cfg.scan_period = util::hours(12);
  engine_cfg.first_scan_offset = util::hours(1);
  engine_cfg.threads = threads;

  double tap_packets = 0;
  const double wall = best_of([&] {
    const auto results = core::CampaignRunner(1).run(
        core::seed_sweep_jobs(campus_cfg, engine_cfg, 1, 1));
    tap_packets = 0;
    for (const auto& v : results.at(0).snapshot.values()) {
      if (v.name.rfind("tap.", 0) == 0 && v.name.size() > 13 &&
          v.name.compare(v.name.size() - 13, 13, ".packets_seen") == 0) {
        tap_packets += v.value;
      }
    }
  });
  return tap_packets / wall;
}

/// The deterministic end-of-campaign merge in isolation: 8 key-disjoint
/// shard tables absorbed into one. Reported as merged entries/s — the
/// cost the parallel path pays once per campaign.
double bench_shard_merge(std::size_t entries_per_shard) {
  constexpr std::size_t kShards = 8;
  const int reps = smoke() ? 1 : 3;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    std::vector<passive::ServiceTable> shards(kShards);
    for (std::size_t s = 0; s < kShards; ++s) {
      for (std::size_t i = 0; i < entries_per_shard; ++i) {
        // Stride by shard count: disjoint keys, as the pipeline's
        // address partition guarantees.
        const passive::ServiceKey key{
            Ipv4(0x80000000u + static_cast<std::uint32_t>(i * kShards + s)),
            net::Proto::kTcp, 80};
        const auto t = util::kEpoch + util::usec(static_cast<std::int64_t>(i));
        shards[s].discover(key, t);
        shards[s].count_flow(key, Ipv4(0x42000000u), t);
      }
    }
    passive::ServiceTable merged;
    const double t0 = now_sec();
    for (auto& sh : shards) merged.absorb(std::move(sh));
    const double dt = now_sec() - t0;
    if (merged.size() != kShards * entries_per_shard) std::abort();
    if (dt < best) best = dt;
  }
  return static_cast<double>(kShards * entries_per_shard) / best;
}

// ---------------------------------------------------------------- JSON --

struct Figure {
  std::string key;
  double value;
};

/// Pulls `"key": <number>` out of a flat JSON text (good enough for the
/// baseline files this suite itself writes).
bool json_number(const std::string& text, const std::string& key,
                 double* out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(text.c_str() + pos + needle.size(), nullptr);
  return true;
}

/// Keys whose value is a function of how many cores the host has, not
/// just of the code: the intra-campaign sharding sweep. Comparing one
/// of these against a baseline measured on a different core count says
/// nothing about the code, so the speedup table refuses to.
bool core_count_sensitive(const std::string& key) {
  return key.rfind("campaign_pps_t", 0) == 0;
}

void write_json(const std::vector<Figure>& figures) {
  std::string baseline_text;
  if (const char* path = std::getenv("SVCDISC_BASELINE_JSON")) {
    std::ifstream in(path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      baseline_text = ss.str();
      // Strip whitespace-only files.
      if (baseline_text.find('{') == std::string::npos) baseline_text.clear();
    }
  }

  const char* out_path = std::getenv("SVCDISC_BENCH_OUT");
  if (!out_path) out_path = "BENCH_hotpath.json";
  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"hotpath\",\n";
  out << "  \"smoke\": " << (smoke() ? "true" : "false") << ",\n";
  out << "  \"current\": {\n";
  for (std::size_t i = 0; i < figures.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", figures[i].value);
    out << "    \"" << figures[i].key << "\": " << buf
        << (i + 1 < figures.size() ? ",\n" : "\n");
  }
  out << "  }";
  if (!baseline_text.empty()) {
    // Cross-core-count guard: the sharding sweep measures the host as
    // much as the code. If the baseline records a different core count
    // (or none at all), its campaign_pps_t* figures are not comparable
    // and are left out of the speedup table.
    double current_cores = 0;
    double baseline_cores = 0;
    for (const auto& fig : figures) {
      if (fig.key == "host_cores") current_cores = fig.value;
    }
    const bool cores_known =
        json_number(baseline_text, "host_cores", &baseline_cores);
    const bool cores_match =
        cores_known && baseline_cores == current_cores && current_cores != 0;
    if (!cores_match) {
      std::printf("note: baseline host_cores %s current host_cores %.0f; "
                  "skipping campaign_pps_t* speedups (not comparable "
                  "across core counts)\n",
                  cores_known ? "!=" : "unknown vs", current_cores);
    }
    out << ",\n  \"baseline\": " << baseline_text;
    out << ",\n  \"speedup\": {\n";
    bool first = true;
    for (const auto& fig : figures) {
      if (fig.key == "host_cores") continue;  // a fact, not a figure
      if (!cores_match && core_count_sensitive(fig.key)) continue;
      double base = 0;
      if (!json_number(baseline_text, fig.key, &base) || base == 0 ||
          fig.value == 0) {
        continue;
      }
      // ns-per-op and wall-time keys are lower-better; rates are
      // higher-better. Either way >1 in the output means "faster now".
      const auto has_suffix = [&](const char* s) {
        const std::size_t n = std::strlen(s);
        return fig.key.size() > n &&
               fig.key.compare(fig.key.size() - n, n, s) == 0;
      };
      const bool lower_better =
          has_suffix("_ns") ||
          (has_suffix("_sec") && !has_suffix("_per_sec"));
      const double speedup =
          lower_better ? base / fig.value : fig.value / base;
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.3f", speedup);
      out << (first ? "" : ",\n") << "    \"" << fig.key << "\": " << buf;
      first = false;
    }
    out << "\n  }";
  }
  out << "\n}\n";
  std::printf("wrote %s\n", out_path);
}

}  // namespace

int run() {
  const std::size_t scale = smoke() ? 1 : 100;
  const std::size_t events_total = 20'000 * scale;
  const std::size_t packets_total = 20'000 * scale;
  const std::size_t filter_total = 40'000 * scale;
  const std::size_t table_total = 10'000 * scale;

  const auto mix = make_traffic_mix(4096);
  std::vector<Figure> figures;

  // Recorded alongside the figures so a later run can tell whether the
  // sharding sweep below was measured on comparable hardware.
  const unsigned host_cores = std::thread::hardware_concurrency();
  figures.push_back({"host_cores", static_cast<double>(host_cores)});

  std::printf("== Hot-path benchmarks%s (%u cores) ==\n",
              smoke() ? " (smoke)" : "", host_cores);

  const double events_ps = bench_event_queue(events_total);
  figures.push_back({"events_per_sec", events_ps});
  std::printf("event queue:        %12.0f events/s\n", events_ps);

  const double tap_pps = bench_tap_monitor(mix, packets_total);
  figures.push_back({"tap_monitor_pps", tap_pps});
  std::printf("tap+monitor:        %12.0f packets/s\n", tap_pps);

  const double tap_batch_pps = bench_tap_monitor_batch(mix, packets_total);
  figures.push_back({"tap_monitor_batch_pps", tap_batch_pps});
  std::printf("tap+monitor batch:  %12.0f packets/s\n", tap_batch_pps);

  const double tap_stream_pps = bench_tap_monitor_stream(mix, packets_total);
  figures.push_back({"tap_monitor_stream_pps", tap_stream_pps});
  std::printf("tap+monitor+stream: %12.0f packets/s\n", tap_stream_pps);

  const double hll_ns = bench_hll_add_ns(filter_total);
  const double cms_ns = bench_cms_add_ns(filter_total);
  figures.push_back({"sketch_hll_add_ns", hll_ns});
  figures.push_back({"sketch_cms_add_ns", cms_ns});
  std::printf("hll add:            %12.2f ns/item\n", hll_ns);
  std::printf("cms add:            %12.2f ns/item\n", cms_ns);

  const auto default_filter = capture::Tap::paper_default_filter();
  const auto conj_filter =
      capture::Filter::compile("udp and dst net 128.125.0.0/16");
  const auto general_filter = capture::Filter::compile(
      "tcp and not (port 80 or port 22) and dst net 128.125.0.0/16");
  const double f_default = bench_filter_ns(default_filter, mix, filter_total);
  const double f_conj = bench_filter_ns(*conj_filter, mix, filter_total);
  const double f_general = bench_filter_ns(*general_filter, mix, filter_total);
  figures.push_back({"filter_default_ns", f_default});
  figures.push_back({"filter_conj_ns", f_conj});
  figures.push_back({"filter_general_ns", f_general});
  std::printf("filter default:     %12.2f ns/packet\n", f_default);
  std::printf("filter conjunction: %12.2f ns/packet\n", f_conj);
  std::printf("filter general:     %12.2f ns/packet\n", f_general);

  const double table_ops = bench_service_table(mix, table_total);
  figures.push_back({"service_table_ops_per_sec", table_ops});
  std::printf("service table:      %12.0f ops/s\n", table_ops);

  const double det_pps = bench_scan_detector(mix, table_total);
  figures.push_back({"scan_detector_pps", det_pps});
  std::printf("scan detector:      %12.0f packets/s\n", det_pps);

  const CampaignFigures campaign = bench_campaign();
  figures.push_back({"campaign_packets_per_sec", campaign.packets_per_sec});
  figures.push_back({"campaign_events_per_sec", campaign.events_per_sec});
  figures.push_back({"campaign_wall_sec", campaign.wall_sec});
  std::printf("campaign:           %12.0f packets/s, %.0f events/s "
              "(%.3f s wall)\n",
              campaign.packets_per_sec, campaign.events_per_sec,
              campaign.wall_sec);

  // Intra-campaign parallelism: the same single campaign at 1/2/4/8
  // engine shards. Scaling depends on the cores actually present —
  // figures on a small box are honest, not aspirational — so the runner
  // script disables the sweep entirely below 8 cores rather than record
  // figures that measure the host.
  const char* sweep_env = std::getenv("SVCDISC_BENCH_SHARD_SWEEP");
  if (sweep_env && std::strcmp(sweep_env, "0") == 0) {
    std::printf("campaign shard sweep: skipped (SVCDISC_BENCH_SHARD_SWEEP=0)\n");
  } else {
    for (const std::size_t t : {1u, 2u, 4u, 8u}) {
      const double pps = bench_campaign_sharded(t);
      figures.push_back({"campaign_pps_t" + std::to_string(t), pps});
      std::printf("campaign %zu-shard:   %12.0f packets/s\n", t, pps);
    }
  }

  const double merge_ops = bench_shard_merge(smoke() ? 1'000 : 50'000);
  figures.push_back({"shard_merge_entries_per_sec", merge_ops});
  std::printf("shard merge:        %12.0f entries/s\n", merge_ops);

  write_json(figures);
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
