// Microbenchmarks (google-benchmark) for the hot paths: wire
// serialization/parsing, filter compilation and evaluation, passive
// monitor ingest, event-queue throughput, and the distributions driving
// the workload. These back the DESIGN.md performance claims (the
// simulator processes tens of millions of events per campaign).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <unordered_map>

#include "capture/filter.h"
#include "capture/tap.h"
#include "host/address_pool.h"
#include "net/packet.h"
#include "net/wire.h"
#include "passive/monitor.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "util/distributions.h"
#include "util/flat_hash.h"
#include "util/rng.h"

namespace svcdisc {
namespace {

using net::Ipv4;
using net::Packet;

Packet sample_synack() {
  Packet p = net::make_tcp(Ipv4::from_octets(128, 125, 3, 7), 80,
                           Ipv4::from_octets(66, 55, 44, 33), 40001,
                           net::flags_syn_ack());
  p.seq = 12345;
  p.ack_no = 999;
  return p;
}

void BM_WireSerialize(benchmark::State& state) {
  const Packet p = sample_synack();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::serialize(p));
  }
}
BENCHMARK(BM_WireSerialize);

void BM_WireParse(benchmark::State& state) {
  const auto bytes = net::serialize(sample_synack());
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::parse(bytes));
  }
}
BENCHMARK(BM_WireParse);

void BM_FilterCompile(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(capture::Filter::compile(
        "(tcp and (syn or rst)) or udp or (icmp and not src host 10.0.0.1)"));
  }
}
BENCHMARK(BM_FilterCompile);

void BM_FilterEval(benchmark::State& state) {
  const auto filter = capture::Tap::paper_default_filter();
  const Packet p = sample_synack();
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.matches(p));
  }
}
BENCHMARK(BM_FilterEval);

// Same program forced down the postfix interpreter; the gap to
// BM_FilterEval is the specialization win for the paper-default filter.
void BM_FilterEvalInterpreted(benchmark::State& state) {
  const auto filter = capture::Tap::paper_default_filter();
  const Packet p = sample_synack();
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.matches_interpreted(p));
  }
}
BENCHMARK(BM_FilterEvalInterpreted);

// FlatMap vs std::unordered_map on the service-table access pattern:
// mostly hits on a working set of a few thousand keys.
template <typename Map>
void flat_map_workload(benchmark::State& state) {
  Map m;
  util::Rng rng(0xFEED);
  std::vector<std::uint64_t> keys(4096);
  for (auto& k : keys) k = rng();
  for (const auto k : keys) m[k] = k;
  std::size_t i = 0, hits = 0;
  for (auto _ : state) {
    const auto it = m.find(keys[i++ & 4095]);
    hits += it != m.end();
  }
  benchmark::DoNotOptimize(hits);
}

void BM_FlatMapFind(benchmark::State& state) {
  flat_map_workload<util::FlatMap<std::uint64_t, std::uint64_t>>(state);
}
BENCHMARK(BM_FlatMapFind);

void BM_UnorderedMapFind(benchmark::State& state) {
  flat_map_workload<std::unordered_map<std::uint64_t, std::uint64_t>>(state);
}
BENCHMARK(BM_UnorderedMapFind);

void BM_MonitorIngestSynAck(benchmark::State& state) {
  passive::MonitorConfig cfg;
  cfg.internal_prefixes = {net::Prefix(Ipv4::from_octets(128, 125, 0, 0), 16)};
  cfg.tcp_ports = net::selected_tcp_ports();
  passive::PassiveMonitor monitor(cfg);
  Packet p = sample_synack();
  std::uint32_t n = 0;
  for (auto _ : state) {
    // Rotate through server addresses so the table keeps growing like a
    // real campaign.
    p.src = Ipv4(Ipv4::from_octets(128, 125, 0, 0).value() + (n++ % 16384));
    monitor.observe(p);
  }
  benchmark::DoNotOptimize(monitor.table().size());
}
BENCHMARK(BM_MonitorIngestSynAck);

void BM_MonitorIngestFlowSyn(benchmark::State& state) {
  passive::MonitorConfig cfg;
  cfg.internal_prefixes = {net::Prefix(Ipv4::from_octets(128, 125, 0, 0), 16)};
  cfg.tcp_ports = net::selected_tcp_ports();
  passive::PassiveMonitor monitor(cfg);
  Packet p = net::make_tcp(Ipv4::from_octets(66, 1, 2, 3), 999,
                           Ipv4::from_octets(128, 125, 3, 7), 80,
                           net::flags_syn());
  std::uint32_t n = 0;
  for (auto _ : state) {
    p.src = Ipv4(Ipv4::from_octets(66, 0, 0, 0).value() + (n++ % 4096));
    monitor.observe(p);
  }
}
BENCHMARK(BM_MonitorIngestFlowSyn);

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue queue;
  util::Rng rng(1);
  std::int64_t drained = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      queue.push(util::TimePoint{static_cast<std::int64_t>(rng.below(1u << 20))},
                 [&drained] { ++drained; });
    }
    while (!queue.empty()) queue.pop().fire();
  }
  benchmark::DoNotOptimize(drained);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_SimulatorSelfScheduling(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int count = 0;
    std::function<void()> step = [&] {
      if (++count < 1000) sim.after(util::usec(10), step);
    };
    sim.after(util::usec(10), step);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorSelfScheduling);

void BM_ZipfSample(benchmark::State& state) {
  util::Zipf zipf(static_cast<std::size_t>(state.range(0)), 1.1);
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(100)->Arg(10000);

void BM_PoolAcquireRelease(benchmark::State& state) {
  host::AddressPool pool(host::AddressClass::kDhcp,
                         net::Prefix(Ipv4::from_octets(128, 125, 56, 0), 22),
                         false, 7);
  std::uint32_t id = 0;
  for (auto _ : state) {
    const auto addr = pool.acquire(id);
    if (addr) pool.release(id, *addr);
    ++id;
  }
}
BENCHMARK(BM_PoolAcquireRelease);

}  // namespace
}  // namespace svcdisc

BENCHMARK_MAIN();
