// Figure 12: cumulative server discovery over 11 days during winter
// break (DTCPbreak): reduced student population, collapsed transient
// blocks, Internet2 monitored but excluded from ground truth as in §5.5.
#include <cstdio>

#include "analysis/export.h"
#include "analysis/table.h"
#include "bench_common.h"
#include "core/report.h"
#include "core/weighted.h"

namespace svcdisc {

int run() {
  auto engine_cfg = bench::dtcp1_engine_config();
  engine_cfg.scan_count = 22;  // every 12 h over 11 days
  auto campaign =
      bench::make_campaign(workload::CampusConfig::dtcp_break(), engine_cfg);
  bench::print_header("Figure 12: winter-break discovery (DTCPbreak)",
                      campaign);

  bench::Stopwatch watch;
  campaign.e().run();
  watch.report("DTCPbreak campaign");

  const auto end = util::kEpoch + campaign.c().config().duration;
  auto* campus = campaign.campus.get();
  core::ServiceFilter static_only;
  static_only.address_pred = [campus](net::Ipv4 addr) {
    return campus->class_of(addr) == host::AddressClass::kStatic;
  };

  const auto p_all = core::discovery_curve(
      core::address_discovery_times(campaign.e().monitor().table(), end));
  const auto a_all = core::discovery_curve(core::address_times_from_scans(
      campaign.e().prober().scans(), nullptr));
  const auto p_static = core::discovery_curve(core::address_discovery_times(
      campaign.e().monitor().table(), end, static_only));
  const auto a_static = core::discovery_curve(core::address_times_from_scans(
      campaign.e().prober().scans(), nullptr, static_only));

  analysis::TextTable table({"date", "Passive(all)", "Active(all)",
                             "Passive(static)", "Active(static)"});
  const auto& cal = campaign.c().calendar();
  for (int d = 0; d <= 11; ++d) {
    const auto t = util::kEpoch + util::days(d);
    table.add_row(
        {cal.month_day(t),
         analysis::fmt_count(static_cast<std::uint64_t>(p_all.at(t))),
         analysis::fmt_count(static_cast<std::uint64_t>(a_all.at(t))),
         analysis::fmt_count(static_cast<std::uint64_t>(p_static.at(t))),
         analysis::fmt_count(static_cast<std::uint64_t>(a_static.at(t)))});
  }
  std::fputs(table.render().c_str(), stdout);

  // Completeness comparison against the in-semester scenario (§5.5).
  std::unordered_set<net::Ipv4> truth;
  for (const auto& [addr, t] :
       core::address_discovery_times(campaign.e().monitor().table(), end)) {
    truth.insert(addr);
  }
  for (const auto& [addr, t] : core::address_times_from_scans(
           campaign.e().prober().scans(), nullptr)) {
    truth.insert(addr);
  }
  std::printf(
      "\nat 11 days: passive %.0f%% of the union (paper: 82%% during break\n"
      "vs 73%% in-semester), active %.0f%% — both curves level off because\n"
      "the transient population (VPN/PPP/dorm DHCP) is largely gone.\n",
      100.0 * p_all.at(end) / static_cast<double>(truth.size()),
      100.0 * a_all.at(end) / static_cast<double>(truth.size()));

  analysis::export_figure("fig12_break", "Figure 12: winter-break discovery",
                       {{"passive_all", &p_all, 0},
                        {"active_all", &a_all, 0},
                        {"passive_static", &p_static, 0},
                        {"active_static", &a_static, 0}},
                       util::kEpoch, end, 11 * 8, cal);
  std::printf("series written to fig12_break.tsv (+ fig12_break.gp)\n");
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
