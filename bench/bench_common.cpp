#include "bench_common.h"

#include <chrono>
#include <cstdlib>

namespace svcdisc::bench {

Campaign make_campaign(workload::CampusConfig campus_cfg,
                       core::EngineConfig engine_cfg) {
  Campaign campaign;
  campaign.campus =
      std::make_unique<workload::Campus>(apply_scale(std::move(campus_cfg)));
  campaign.engine = std::make_unique<core::DiscoveryEngine>(*campaign.campus,
                                                            engine_cfg);
  return campaign;
}

core::EngineConfig dtcp1_engine_config() {
  core::EngineConfig cfg;
  cfg.scan_count = 35;
  cfg.scan_period = util::hours(12);
  cfg.first_scan_offset = util::hours(1);  // 11:00 for a 10:00 start
  return cfg;
}

workload::CampusConfig apply_scale(workload::CampusConfig cfg) {
  const char* env = std::getenv("SVCDISC_SCALE");
  if (!env) return cfg;
  const double scale = std::atof(env);
  if (scale <= 0 || scale >= 1.0) return cfg;
  const auto s = [scale](std::uint32_t v) {
    return static_cast<std::uint32_t>(v * scale);
  };
  cfg.static_plain = s(cfg.static_plain);
  cfg.web_custom = s(cfg.web_custom);
  cfg.web_default = s(cfg.web_default);
  cfg.web_minimal = s(cfg.web_minimal);
  cfg.web_config = s(cfg.web_config);
  cfg.web_database = s(cfg.web_database);
  cfg.web_restricted = s(cfg.web_restricted);
  cfg.ssh_only = s(cfg.ssh_only);
  cfg.ftp_only = s(cfg.ftp_only);
  cfg.mysql_only = s(cfg.mysql_only);
  cfg.births = s(cfg.births);
  cfg.deaths = s(cfg.deaths);
  cfg.firewalled = s(cfg.firewalled);
  cfg.hot_services = s(cfg.hot_services);
  cfg.steady_services = s(cfg.steady_services);
  cfg.oneshot_services = s(cfg.oneshot_services);
  cfg.dhcp_hosts = s(cfg.dhcp_hosts);
  cfg.ppp_hosts = s(cfg.ppp_hosts);
  cfg.vpn_hosts = s(cfg.vpn_hosts);
  cfg.wireless_hosts = s(cfg.wireless_hosts);
  cfg.small_sweeps = s(cfg.small_sweeps);
  cfg.traffic_scale *= scale;
  return cfg;
}

std::vector<core::CampaignResult> run_campaigns(
    std::vector<core::CampaignJob> jobs, const std::string& label) {
  for (auto& job : jobs) {
    job.campus_cfg = apply_scale(std::move(job.campus_cfg));
  }
  const core::CampaignRunner runner;
  const std::size_t count = jobs.size();
  Stopwatch watch;
  auto results = runner.run(std::move(jobs));
  std::fprintf(stderr,
               "[bench] %s: %zu campaign(s) on %zu thread(s) took %.1f s\n",
               label.c_str(), count, runner.threads(), watch.elapsed_sec());
  for (const auto& result : results) {
    if (!result.ok()) {
      std::fprintf(stderr, "[bench] job '%s' failed: %s\n",
                   result.label.c_str(), result.error.c_str());
    }
  }
  return results;
}

void print_header(const std::string& experiment, const Campaign& campaign) {
  const auto& cfg = campaign.campus->config();
  std::printf("== %s ==\n", experiment.c_str());
  std::printf(
      "scenario: %zu probe targets, %.0f-day campaign, seed %llu\n\n",
      campaign.campus->scan_targets().size(), cfg.duration.days(),
      static_cast<unsigned long long>(cfg.seed));
}

Stopwatch::Stopwatch()
    : start_ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count()) {}

double Stopwatch::elapsed_sec() const {
  const long long now =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return static_cast<double>(now - start_ns_) / 1e9;
}

void Stopwatch::report(const std::string& label) const {
  std::fprintf(stderr, "[bench] %s took %.1f s\n", label.c_str(),
               elapsed_sec());
}

}  // namespace svcdisc::bench
