// Ablation: passive TCP detection rule.
//
// The paper asserts that "under normal operation, even just the presence
// of a positive response to a connection request (SYN-ACK) is sufficient
// evidence of a TCP service" (§2.2) and its infrastructure therefore
// keeps only SYN/SYN-ACK/RST headers. The alternative rule demands the
// inbound SYN be observed before crediting the SYN-ACK (half the
// three-way handshake). This bench runs both rules side by side over the
// same capture and shows they agree on real traffic — validating the
// paper's cheaper rule — while reporting the bookkeeping cost the strict
// rule pays.
#include <cstdio>

#include "analysis/table.h"
#include "bench_common.h"
#include "core/report.h"
#include "passive/monitor.h"

namespace svcdisc {

int run() {
  std::printf("== Ablation: SYN-ACK-only vs strict handshake rule ==\n\n");

  auto campus_cfg = workload::CampusConfig::dtcp1_18d();
  campus_cfg.duration = util::days(4);
  core::EngineConfig engine_cfg;
  engine_cfg.scan_count = 8;
  auto campaign = bench::make_campaign(campus_cfg, engine_cfg);

  // Attach a strict-rule monitor to the same taps.
  passive::MonitorConfig strict_cfg;
  strict_cfg.internal_prefixes = campaign.c().internal_prefixes();
  strict_cfg.tcp_ports = campaign.c().tcp_ports();
  strict_cfg.require_syn_before_synack = true;
  passive::PassiveMonitor strict(strict_cfg);
  campaign.e().add_tap_consumer(&strict);

  bench::Stopwatch watch;
  campaign.e().run();
  watch.report("4-day campaign");

  const auto end = util::kEpoch + campaign.c().config().duration;
  const auto relaxed_found =
      core::addresses_found(campaign.e().monitor().table(), end);
  const auto strict_found = core::addresses_found(strict.table(), end);

  std::size_t strict_only = 0, relaxed_only = 0;
  for (const net::Ipv4 addr : strict_found) {
    relaxed_only += 0;
    if (!relaxed_found.contains(addr)) ++strict_only;
  }
  for (const net::Ipv4 addr : relaxed_found) {
    if (!strict_found.contains(addr)) ++relaxed_only;
  }

  analysis::TextTable table({"rule", "servers found", "unmatched SYN-ACKs"});
  table.add_row({"SYN-ACK only (paper)",
                 analysis::fmt_count(relaxed_found.size()), "-"});
  table.add_row({"require SYN first",
                 analysis::fmt_count(strict_found.size()),
                 analysis::fmt_count(strict.unmatched_syn_acks())});
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\ndisagreement: %zu servers found only by the relaxed rule, %zu\n"
      "only by the strict rule. On genuine traffic every SYN-ACK follows\n"
      "an observable SYN across the same tap, so the rules coincide —\n"
      "the paper's single-packet rule gets full fidelity while letting\n"
      "the monitor stay stateless (no per-flow table; ours needed one\n"
      "entry per in-flight handshake).\n",
      relaxed_only, strict_only);
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
