// Ablation: generic vs service-specific UDP probing (DUDP).
//
// The paper used generic (empty) UDP probes because USC forbade Nmap's
// service-specific probes over privacy concerns (§4.5), leaving a large
// "possibly open" category. This bench runs both probe styles over the
// same population and shows how application-aware probes collapse the
// ambiguity.
#include <array>
#include <cstdio>

#include "analysis/table.h"
#include "bench_common.h"

namespace svcdisc {
namespace {

struct Verdicts {
  std::size_t open, possible, closed;
};

// Both probe styles are independent campaigns, so they run as parallel
// CampaignRunner jobs; each drive fills only its own Verdicts slot.
core::CampaignJob make_job(bool service_probes, Verdicts* out) {
  core::CampaignJob job;
  job.campus_cfg = workload::CampusConfig::dudp();
  job.seed = job.campus_cfg.seed;
  job.engine_cfg.scan_count = 0;
  job.label = service_probes ? "service-specific" : "generic";
  job.drive = [service_probes, out](workload::Campus& campus,
                                    core::DiscoveryEngine& engine) {
    campus.start();
    campus.simulator().run_until(util::kEpoch + util::minutes(10));

    active::ScanSpec spec;
    spec.targets = campus.scan_targets();
    spec.udp_ports = campus.udp_ports();
    spec.probes_per_sec = 200.0;  // timing is not under study here
    spec.udp_service_probes = service_probes;
    bool done = false;
    engine.prober().start_scan(spec, [&](const active::ScanRecord& r) {
      done = true;
      out->open = r.count(active::ProbeStatus::kOpenUdp);
      out->possible = r.count(active::ProbeStatus::kMaybeOpen);
      out->closed = r.count(active::ProbeStatus::kClosed);
    });
    while (!done && campus.simulator().step()) {
    }
  };
  return job;
}

}  // namespace

int run() {
  std::printf("== Ablation: generic vs service-specific UDP probes ==\n\n");
  std::array<Verdicts, 2> verdicts{};
  std::vector<core::CampaignJob> jobs;
  jobs.push_back(make_job(false, &verdicts[0]));
  jobs.push_back(make_job(true, &verdicts[1]));
  bench::run_campaigns(std::move(jobs), "two UDP scans");
  const Verdicts& generic = verdicts[0];
  const Verdicts& specific = verdicts[1];

  analysis::TextTable table({"probe style", "definitely open",
                             "possibly open", "definitely closed"});
  table.add_row({"generic, empty payload (paper)",
                 analysis::fmt_count(generic.open),
                 analysis::fmt_count(generic.possible),
                 analysis::fmt_count(generic.closed)});
  table.add_row({"service-specific request",
                 analysis::fmt_count(specific.open),
                 analysis::fmt_count(specific.possible),
                 analysis::fmt_count(specific.closed)});
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nservice-specific probes convert %zu 'possibly open' verdicts into\n"
      "%zu definite opens: exactly the ambiguity the paper had to accept.\n"
      "Residual 'possibly open' entries are firewalled ports where even a\n"
      "valid request draws silence.\n",
      generic.possible - specific.possible, specific.open - generic.open);
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
