// Ablation: generic vs service-specific UDP probing (DUDP).
//
// The paper used generic (empty) UDP probes because USC forbade Nmap's
// service-specific probes over privacy concerns (§4.5), leaving a large
// "possibly open" category. This bench runs both probe styles over the
// same population and shows how application-aware probes collapse the
// ambiguity.
#include <cstdio>

#include "analysis/table.h"
#include "bench_common.h"

namespace svcdisc {
namespace {

struct Verdicts {
  std::size_t open, possible, closed;
};

Verdicts run_one(bool service_probes) {
  auto campus_cfg = workload::CampusConfig::dudp();
  core::EngineConfig engine_cfg;
  engine_cfg.scan_count = 0;
  auto campaign = bench::make_campaign(campus_cfg, engine_cfg);
  campaign.c().start();
  campaign.c().simulator().run_until(util::kEpoch + util::minutes(10));

  active::ScanSpec spec;
  spec.targets = campaign.c().scan_targets();
  spec.udp_ports = campaign.c().udp_ports();
  spec.probes_per_sec = 200.0;  // timing is not under study here
  spec.udp_service_probes = service_probes;
  bool done = false;
  Verdicts v{};
  campaign.e().prober().start_scan(spec, [&](const active::ScanRecord& r) {
    done = true;
    v.open = r.count(active::ProbeStatus::kOpenUdp);
    v.possible = r.count(active::ProbeStatus::kMaybeOpen);
    v.closed = r.count(active::ProbeStatus::kClosed);
  });
  while (!done && campaign.c().simulator().step()) {
  }
  return v;
}

}  // namespace

int run() {
  std::printf("== Ablation: generic vs service-specific UDP probes ==\n\n");
  bench::Stopwatch watch;
  const Verdicts generic = run_one(false);
  const Verdicts specific = run_one(true);
  watch.report("two UDP scans");

  analysis::TextTable table({"probe style", "definitely open",
                             "possibly open", "definitely closed"});
  table.add_row({"generic, empty payload (paper)",
                 analysis::fmt_count(generic.open),
                 analysis::fmt_count(generic.possible),
                 analysis::fmt_count(generic.closed)});
  table.add_row({"service-specific request",
                 analysis::fmt_count(specific.open),
                 analysis::fmt_count(specific.possible),
                 analysis::fmt_count(specific.closed)});
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nservice-specific probes convert %zu 'possibly open' verdicts into\n"
      "%zu definite opens: exactly the ambiguity the paper had to accept.\n"
      "Residual 'possibly open' entries are firewalled ports where even a\n"
      "valid request draws silence.\n",
      generic.possible - specific.possible, specific.open - generic.open);
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
