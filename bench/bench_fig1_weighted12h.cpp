// Figure 1: weighted and unweighted cumulative server discovery over the
// first 12 hours, for passive monitoring and the first active scan.
// Weights (flows, unique clients per server) are accumulated over the
// whole campaign, as in the paper (§4.1.2).
#include <cstdio>

#include "analysis/export.h"
#include "analysis/table.h"
#include "bench_common.h"
#include "core/report.h"
#include "core/weighted.h"

namespace svcdisc {

int run() {
  auto campaign = bench::make_campaign(workload::CampusConfig::dtcp1_18d(),
                                       bench::dtcp1_engine_config());
  bench::print_header(
      "Figure 1: weighted vs unweighted 12-h discovery (DTCP1-12h)",
      campaign);

  bench::Stopwatch watch;
  campaign.e().run();
  watch.report("DTCP1-18d campaign");

  const auto cutoff = util::kEpoch + util::hours(12);
  const auto weights = core::address_weights(campaign.e().monitor().table());

  const auto passive_times = core::address_discovery_times(
      campaign.e().monitor().table(), cutoff);
  const auto active_times = core::address_times_from_scans(
      campaign.e().prober().scans(),
      [](const active::ScanRecord& s) { return s.index == 0; });

  const auto passive = core::weighted_curves(passive_times, weights);
  const auto active = core::weighted_curves(active_times, weights);

  // Percent of the 12-h union, as the paper plots.
  std::unordered_set<net::Ipv4> union_addrs;
  for (const auto& [addr, t] : passive_times) union_addrs.insert(addr);
  for (const auto& [addr, t] : active_times) union_addrs.insert(addr);
  double union_flows = 0, union_clients = 0;
  for (const net::Ipv4 addr : union_addrs) {
    const auto f = weights.flows.find(addr);
    if (f != weights.flows.end()) union_flows += f->second;
    const auto c = weights.clients.find(addr);
    if (c != weights.clients.end()) union_clients += c->second;
  }

  analysis::TextTable table({"time", "P unw", "P flow", "P client", "A unw",
                             "A flow", "A client"});
  const auto& cal = campaign.c().calendar();
  for (int m = 0; m <= 12 * 60; m += 45) {
    const auto t = util::kEpoch + util::minutes(m);
    const auto pct = [](double v, double total) {
      return analysis::fmt_double(total > 0 ? 100.0 * v / total : 0.0, 1);
    };
    table.add_row({cal.time_of_day(t),
                   pct(passive.unweighted.at(t),
                       static_cast<double>(union_addrs.size())),
                   pct(passive.flow_weighted.at(t), union_flows),
                   pct(passive.client_weighted.at(t), union_clients),
                   pct(active.unweighted.at(t),
                       static_cast<double>(union_addrs.size())),
                   pct(active.flow_weighted.at(t), union_flows),
                   pct(active.client_weighted.at(t), union_clients)});
  }
  std::fputs(table.render().c_str(), stdout);

  const auto to_min = [](util::TimePoint t) {
    return static_cast<double>(t.usec) / 6e7;
  };
  std::printf(
      "\npassive reaches 99%% of flow-weighted servers at t+%.0f min\n"
      "(paper: 5 min), 99%% of client-weighted at t+%.0f min (paper: 14\n"
      "min); active needs over an hour for either (rate-limited walk).\n",
      to_min(passive.flow_weighted.time_to_reach(0.99 * union_flows)),
      to_min(passive.client_weighted.time_to_reach(0.99 * union_clients)));

  analysis::export_figure(
      "fig1_weighted12h", "Figure 1: weighted vs unweighted 12-h discovery",
      {{"passive_unweighted", &passive.unweighted,
        static_cast<double>(union_addrs.size())},
       {"passive_flow", &passive.flow_weighted, union_flows},
       {"passive_client", &passive.client_weighted, union_clients},
       {"active_unweighted", &active.unweighted,
        static_cast<double>(union_addrs.size())},
       {"active_flow", &active.flow_weighted, union_flows},
       {"active_client", &active.client_weighted, union_clients}},
      util::kEpoch, cutoff, 145, cal);
  std::printf("series written to fig1_weighted12h.tsv (+ fig1_weighted12h.gp)\n");
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
