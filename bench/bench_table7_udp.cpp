// Table 7: UDP service discovery (DUDP): 24 hours of passive monitoring
// plus one generic UDP scan of ports 80/53/137/27015.
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "analysis/table.h"
#include "bench_common.h"
#include "core/report.h"

namespace svcdisc {

int run() {
  core::EngineConfig engine_cfg;
  engine_cfg.scan_count = 1;
  auto campaign =
      bench::make_campaign(workload::CampusConfig::dudp(), engine_cfg);
  bench::print_header("Table 7: UDP services discovered (DUDP)", campaign);

  bench::Stopwatch watch;
  campaign.e().run();
  // The UDP scan of 4 ports x ~15.6k addresses outlasts the 24-h passive
  // window slightly at the configured rate; let it finish.
  while (campaign.e().prober().scan_in_progress()) {
    campaign.c().simulator().step();
  }
  watch.report("DUDP campaign");

  if (campaign.e().prober().scans().empty()) {
    std::fprintf(stderr, "no scan completed\n");
    return 1;
  }
  const auto& scan = campaign.e().prober().scans().front();

  const auto& ports = campaign.c().udp_ports();
  std::unordered_map<net::Port, std::uint64_t> open, possible, closed,
      passive_counts;

  // Host-level: addresses that answered nothing at all.
  std::unordered_set<net::Ipv4> responded;
  for (const auto& outcome : scan.outcomes) {
    switch (outcome.status) {
      case active::ProbeStatus::kOpenUdp:
        ++open[outcome.key.port];
        responded.insert(outcome.key.addr);
        break;
      case active::ProbeStatus::kClosed:
        ++closed[outcome.key.port];
        responded.insert(outcome.key.addr);
        break;
      case active::ProbeStatus::kMaybeOpen:
        ++possible[outcome.key.port];
        break;
      default:
        break;
    }
  }
  std::uint64_t silent_hosts = 0;
  {
    std::unordered_set<net::Ipv4> all_addrs;
    for (const auto& outcome : scan.outcomes) {
      all_addrs.insert(outcome.key.addr);
    }
    for (const net::Ipv4 addr : all_addrs) {
      silent_hosts += !responded.contains(addr);
    }
  }

  const auto cutoff = util::kEpoch + util::days(1);
  campaign.e().monitor().table().for_each(
      [&](const passive::ServiceKey& key, const passive::ServiceRecord& r) {
        if (key.proto == net::Proto::kUdp && r.first_seen <= cutoff) {
          ++passive_counts[key.port];
        }
      });

  const auto total = [](std::unordered_map<net::Port, std::uint64_t>& m) {
    std::uint64_t t = 0;
    for (const auto& [port, count] : m) t += count;
    return t;
  };

  analysis::TextTable table({"service", "All", "Web 80", "DNS 53",
                             "NetBIOS 137", "Gaming 27015"});
  const auto row = [&](const char* name,
                       std::unordered_map<net::Port, std::uint64_t>& m) {
    std::vector<std::string> cells{name, analysis::fmt_count(total(m))};
    for (const net::Port p : ports) {
      cells.push_back(analysis::fmt_count(m[p]));
    }
    table.add_row(std::move(cells));
  };
  row("Passive", passive_counts);
  table.add_rule();
  row("Active: definitely open (UDP response)", open);
  row("Active: possibly open", possible);
  table.add_row({"Active: no response from any probed port",
                 analysis::fmt_count(silent_hosts), "-", "-", "-", "-"});
  row("Active: definitely closed (ICMP response)", closed);
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\npaper: passive 37 (0/32/4/1); definitely open 116 (0/52/64/0);\n"
      "possibly open 4,862 (137/376/4,238/111); silent hosts 6,359;\n"
      "definitely closed 9,826 (9,687/9,449/5,572/9,713).\n"
      "shape checks: NetBIOS dominates 'possibly open' (silent Windows\n"
      "hosts); passive UDP finds only the handful of genuinely used\n"
      "services.\n");
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
