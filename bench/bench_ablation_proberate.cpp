// Ablation: probe rate vs completeness and stealth.
//
// The paper notes scanners rate-limit "to reduce the effects to normal
// traffic ... or avoid triggering intrusion-detection systems" and that
// Nmap has modes that "intentionally slow their probe rate to conceal
// their behavior" (§2.3). Slower scans take longer, so transient hosts
// have more chances to disconnect mid-scan; faster scans snapshot the
// population. This bench sweeps the per-machine probe rate for a single
// scan and reports duration and servers found, split by transience.
#include <cstdio>

#include "analysis/table.h"
#include "bench_common.h"
#include "core/report.h"

namespace svcdisc {

int run() {
  std::printf("== Ablation: probe rate (one DTCP1 scan) ==\n\n");
  analysis::TextTable table({"rate/machine", "duration", "servers",
                             "static", "transient"});
  bench::Stopwatch watch;

  for (const double rate : {1.0, 3.0, 7.5, 25.0, 100.0}) {
    auto campus_cfg = workload::CampusConfig::dtcp1_18d();
    campus_cfg.duration = util::days(2);
    core::EngineConfig engine_cfg;
    engine_cfg.scan_count = 0;
    auto campaign = bench::make_campaign(campus_cfg, engine_cfg);
    campaign.c().start();
    campaign.c().simulator().run_until(util::kEpoch + util::hours(1));

    active::ScanSpec spec;
    spec.targets = campaign.c().scan_targets();
    spec.tcp_ports = campaign.c().tcp_ports();
    spec.probes_per_sec = rate;
    double minutes = 0;
    bool done = false;
    campaign.e().prober().start_scan(spec,
                                     [&](const active::ScanRecord& r) {
                                       done = true;
                                       minutes = static_cast<double>(
                                                     (r.finished - r.started)
                                                         .usec) /
                                                 6e7;
                                     });
    while (!done && campaign.c().simulator().step()) {
    }

    auto* campus = campaign.campus.get();
    const auto now = campaign.c().simulator().now();
    const auto all =
        core::addresses_found(campaign.e().prober().table(), now);
    std::size_t transient = 0;
    for (const net::Ipv4 addr : all) {
      transient += host::is_transient(campus->class_of(addr));
    }
    char rate_text[24], dur_text[24];
    std::snprintf(rate_text, sizeof rate_text, "%.1f/s", rate);
    std::snprintf(dur_text, sizeof dur_text, "%.0f min", minutes);
    table.add_row({rate_text, dur_text, analysis::fmt_count(all.size()),
                   analysis::fmt_count(all.size() - transient),
                   analysis::fmt_count(transient)});
  }
  watch.report("five single-scan campaigns");
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nstatic coverage is rate-insensitive (always-on hosts answer\n"
      "whenever probed); transient coverage shifts with duration — a\n"
      "longer scan window samples more of the connect/disconnect churn,\n"
      "trading per-snapshot accuracy for accumulation, which is why the\n"
      "paper's 90-120-minute scans behave like population snapshots.\n");
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
