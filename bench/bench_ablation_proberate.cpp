// Ablation: probe rate vs completeness and stealth.
//
// The paper notes scanners rate-limit "to reduce the effects to normal
// traffic ... or avoid triggering intrusion-detection systems" and that
// Nmap has modes that "intentionally slow their probe rate to conceal
// their behavior" (§2.3). Slower scans take longer, so transient hosts
// have more chances to disconnect mid-scan; faster scans snapshot the
// population. This bench sweeps the per-machine probe rate for a single
// scan and reports duration and servers found, split by transience.
#include <cstdio>
#include <vector>

#include "analysis/table.h"
#include "bench_common.h"
#include "core/report.h"

namespace svcdisc {

int run() {
  std::printf("== Ablation: probe rate (one DTCP1 scan) ==\n\n");
  analysis::TextTable table({"rate/machine", "duration", "servers",
                             "static", "transient"});

  // One independent campaign per rate — a CampaignRunner job each, with
  // a drive that warms the campus up and hand-runs a single scan. Scan
  // duration comes from the completion callback, so each drive writes
  // its own slot of `minutes`.
  const std::vector<double> rates = {1.0, 3.0, 7.5, 25.0, 100.0};
  std::vector<double> minutes(rates.size(), 0.0);
  std::vector<core::CampaignJob> jobs;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    core::CampaignJob job;
    job.campus_cfg = workload::CampusConfig::dtcp1_18d();
    job.campus_cfg.duration = util::days(2);
    job.seed = job.campus_cfg.seed;
    job.engine_cfg.scan_count = 0;
    char label[24];
    std::snprintf(label, sizeof label, "%.1f/s", rates[i]);
    job.label = label;
    const double rate = rates[i];
    double* out_minutes = &minutes[i];
    job.drive = [rate, out_minutes](workload::Campus& campus,
                                    core::DiscoveryEngine& engine) {
      campus.start();
      campus.simulator().run_until(util::kEpoch + util::hours(1));

      active::ScanSpec spec;
      spec.targets = campus.scan_targets();
      spec.tcp_ports = campus.tcp_ports();
      spec.probes_per_sec = rate;
      bool done = false;
      engine.prober().start_scan(spec, [&](const active::ScanRecord& r) {
        done = true;
        *out_minutes =
            static_cast<double>((r.finished - r.started).usec) / 6e7;
      });
      while (!done && campus.simulator().step()) {
      }
    };
    jobs.push_back(std::move(job));
  }

  auto results =
      bench::run_campaigns(std::move(jobs), "five single-scan campaigns");
  for (std::size_t i = 0; i < results.size(); ++i) {
    auto& result = results[i];
    if (!result.ok()) continue;
    const auto now = result.c().simulator().now();
    const auto all =
        core::addresses_found(result.e().prober().table(), now);
    std::size_t transient = 0;
    for (const net::Ipv4 addr : all) {
      transient += host::is_transient(result.c().class_of(addr));
    }
    char dur_text[24];
    std::snprintf(dur_text, sizeof dur_text, "%.0f min", minutes[i]);
    table.add_row({result.label, dur_text, analysis::fmt_count(all.size()),
                   analysis::fmt_count(all.size() - transient),
                   analysis::fmt_count(transient)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nstatic coverage is rate-insensitive (always-on hosts answer\n"
      "whenever probed); transient coverage shifts with duration — a\n"
      "longer scan window samples more of the connect/disconnect churn,\n"
      "trading per-snapshot accuracy for accumulation, which is why the\n"
      "paper's 90-120-minute scans behave like population snapshots.\n");
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
