// Figure 9: weighted and unweighted cumulative server discovery over the
// first 24 hours of DTCPall (a /24 of lab machines, services on any
// port, one ~24-hour full-port scan).
#include <cstdio>

#include "analysis/export.h"
#include "analysis/table.h"
#include "bench_common.h"
#include "core/report.h"
#include "core/weighted.h"

namespace svcdisc {

int run() {
  core::EngineConfig engine_cfg;
  engine_cfg.scan_count = 1;
  engine_cfg.first_scan_offset = util::minutes(30);
  auto campaign =
      bench::make_campaign(workload::CampusConfig::dtcp_all(), engine_cfg);
  bench::print_header(
      "Figure 9: all-port weighted discovery over 24 h (DTCPall)", campaign);

  bench::Stopwatch watch;
  campaign.e().run();
  watch.report("DTCPall campaign");

  const auto cutoff = util::kEpoch + util::days(1);
  const auto weights = core::address_weights(campaign.e().monitor().table());
  const auto passive_times = core::address_discovery_times(
      campaign.e().monitor().table(), cutoff);
  const auto active_times = core::address_times_from_scans(
      campaign.e().prober().scans(),
      [](const active::ScanRecord& s) { return s.index == 0; });

  const auto passive = core::weighted_curves(passive_times, weights);
  const auto active = core::weighted_curves(active_times, weights);

  std::unordered_set<net::Ipv4> union_addrs;
  for (const auto& [addr, t] : passive_times) union_addrs.insert(addr);
  for (const auto& [addr, t] : active_times) union_addrs.insert(addr);
  double union_flows = 0, union_clients = 0;
  for (const net::Ipv4 addr : union_addrs) {
    if (const auto it = weights.flows.find(addr); it != weights.flows.end()) {
      union_flows += it->second;
    }
    if (const auto it = weights.clients.find(addr);
        it != weights.clients.end()) {
      union_clients += it->second;
    }
  }

  analysis::TextTable table({"time", "P unw", "P flow", "P client", "A unw",
                             "A flow", "A client"});
  const auto& cal = campaign.c().calendar();
  for (int h = 0; h <= 24; h += 2) {
    const auto t = util::kEpoch + util::hours(h);
    const auto pct = [](double v, double total) {
      return analysis::fmt_double(total > 0 ? 100.0 * v / total : 0.0, 1);
    };
    table.add_row({cal.time_of_day(t),
                   pct(passive.unweighted.at(t),
                       static_cast<double>(union_addrs.size())),
                   pct(passive.flow_weighted.at(t), union_flows),
                   pct(passive.client_weighted.at(t), union_clients),
                   pct(active.unweighted.at(t),
                       static_cast<double>(union_addrs.size())),
                   pct(active.flow_weighted.at(t), union_flows),
                   pct(active.client_weighted.at(t), union_clients)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\npaper shape checks: one dominant server carries ~97%% of the\n"
      "subnet's connections; weighted active discovery jumps when the\n"
      "slow full-port walk reaches it (~12:30), while passive has it\n"
      "almost immediately; passive jumps again at the early external\n"
      "sweeps.\n");

  analysis::export_figure(
      "fig9_allports24h", "Figure 9: all-port weighted discovery over 24 h",
      {{"passive_unweighted", &passive.unweighted,
        static_cast<double>(union_addrs.size())},
       {"passive_flow", &passive.flow_weighted, union_flows},
       {"passive_client", &passive.client_weighted, union_clients},
       {"active_unweighted", &active.unweighted,
        static_cast<double>(union_addrs.size())},
       {"active_flow", &active.flow_weighted, union_flows},
       {"active_client", &active.client_weighted, union_clients}},
      util::kEpoch, cutoff, 97, cal);
  std::printf("series written to fig9_allports24h.tsv (+ fig9_allports24h.gp)\n");
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
