// Completeness-per-probe: the budgeted adaptive prober against the
// paper's fixed exhaustive sweep (DESIGN.md §16, EXPERIMENTS.md).
//
// The paper's operators walked every (address, port) pair each scan
// because they had no prior over where services live. The adaptive
// prober seeds candidates from passive observations and learns port
// popularity, per-subnet affinity and cross-port conditionals online;
// this bench measures how much of the sweep's completeness survives as
// the probe budget shrinks. Acceptance bar: >= 90% of the fixed sweep's
// discovered services at <= 50% of its probes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "analysis/table.h"
#include "bench_common.h"
#include "passive/service_table.h"

namespace svcdisc {
namespace {

struct Mode {
  const char* label;
  double fraction;  // of the full per-scan sweep grid; 0 = fixed prober
};

}  // namespace

int run() {
  const char* smoke_env = std::getenv("SVCDISC_BENCH_SMOKE");
  const bool smoke =
      smoke_env && *smoke_env && std::strcmp(smoke_env, "0") != 0;
  std::printf("== Adaptive prober: completeness per probe (tiny campus) ==\n\n");

  auto campus_cfg = workload::CampusConfig::tiny();
  campus_cfg.seed = 7;
  campus_cfg.duration = smoke ? util::days(1) : util::days(2);
  core::EngineConfig engine_cfg;
  engine_cfg.scan_count = smoke ? 2 : 4;

  // The fixed sweep probes the full grid every scan; budgets are
  // fractions of that grid.
  std::size_t grid;
  {
    workload::Campus probe(campus_cfg);
    grid = probe.scan_targets().size() *
           (probe.tcp_ports().size() +
            (probe.config().udp_mode ? probe.udp_ports().size() : 0));
  }

  std::vector<Mode> modes = {{"fixed sweep (paper)", 0.0},
                             {"adaptive 100%", 1.0},
                             {"adaptive 50%", 0.5},
                             {"adaptive 25%", 0.25},
                             {"adaptive 10%", 0.10}};
  if (!smoke) modes.push_back({"adaptive 5%", 0.05});

  std::vector<core::CampaignJob> jobs;
  for (const Mode& mode : modes) {
    core::CampaignJob job;
    job.campus_cfg = campus_cfg;
    job.seed = campus_cfg.seed;
    job.engine_cfg = engine_cfg;
    job.label = mode.label;
    if (mode.fraction > 0.0) {
      job.engine_cfg.adaptive_prober = true;
      job.engine_cfg.adaptive.probe_budget =
          static_cast<std::uint64_t>(mode.fraction * static_cast<double>(grid));
    }
    jobs.push_back(std::move(job));
  }
  auto results = bench::run_campaigns(std::move(jobs), "adaptive sweep");

  // Recall is measured against the fixed sweep's discovery set.
  std::vector<passive::ServiceKey> fixed_keys;
  results[0].engine->prober().table().for_each(
      [&](const passive::ServiceKey& key, const passive::ServiceRecord&) {
        fixed_keys.push_back(key);
      });
  std::uint64_t fixed_probes = 0;
  for (const auto& scan : results[0].engine->prober().scans()) {
    fixed_probes += scan.outcomes.size();
  }

  analysis::TextTable table({"mode", "probes", "vs fixed", "services",
                             "recall", "verified", "demoted"});
  double recall_at_half = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (!r.error.empty()) {
      std::fprintf(stderr, "%s failed: %s\n", modes[i].label,
                   r.error.c_str());
      return 1;
    }
    const auto& prober = r.engine->prober();
    std::uint64_t probes = 0;
    for (const auto& scan : prober.scans()) probes += scan.outcomes.size();
    std::size_t covered = 0;
    for (const auto& key : fixed_keys) {
      if (prober.table().find(key) != nullptr) ++covered;
    }
    const double recall =
        fixed_keys.empty()
            ? 0.0
            : 100.0 * static_cast<double>(covered) /
                  static_cast<double>(fixed_keys.size());
    if (modes[i].fraction == 0.5) recall_at_half = recall;
    char pct[32], rec[32], verified[32], demoted[32];
    std::snprintf(pct, sizeof pct, "%.1f%%",
                  fixed_probes == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(probes) /
                            static_cast<double>(fixed_probes));
    std::snprintf(rec, sizeof rec, "%.1f%%", recall);
    const auto* adaptive = r.engine->adaptive_prober();
    std::snprintf(verified, sizeof verified, "%llu",
                  adaptive ? static_cast<unsigned long long>(
                                 adaptive->verify_confirmed_total())
                           : 0ULL);
    std::snprintf(demoted, sizeof demoted, "%llu",
                  adaptive ? static_cast<unsigned long long>(
                                 adaptive->demotions_total())
                           : 0ULL);
    table.add_row({modes[i].label, analysis::fmt_count(probes), pct,
                   analysis::fmt_count(prober.table().size()), rec,
                   adaptive ? verified : "-", adaptive ? demoted : "-"});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\npassive seeding plus learned priors concentrate the budget on\n"
      "(address, port) pairs that actually answer; the sweep's tail is\n"
      "mostly closed and filtered ports. At 50%% of the sweep's probes\n"
      "the adaptive prober kept %.1f%% of its discoveries (acceptance\n"
      "bar: >= 90%%).\n",
      recall_at_half);
  return recall_at_half >= 90.0 ? 0 : 1;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
