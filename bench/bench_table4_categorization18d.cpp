// Table 4: traits and subsequent categorization of IP addresses —
// the 12-hour observations refined by the remaining 18-day campaign and
// address transience.
#include <cstdio>

#include "analysis/table.h"
#include "bench_common.h"
#include "core/categorize.h"
#include "core/report.h"

namespace svcdisc {

int run() {
  auto campaign = bench::make_campaign(workload::CampusConfig::dtcp1_18d(),
                                       bench::dtcp1_engine_config());
  bench::print_header("Table 4: extended address categorization (DTCP1-18d)",
                      campaign);

  bench::Stopwatch watch;
  campaign.e().run();
  watch.report("DTCP1-18d campaign");

  const auto boundary = util::kEpoch + util::hours(12);
  const auto end = util::kEpoch + campaign.c().config().duration;

  // 12-hour view.
  const auto passive_12h =
      core::addresses_found(campaign.e().monitor().table(), boundary);
  const auto active_12h = core::address_times_from_scans(
      campaign.e().prober().scans(),
      [](const active::ScanRecord& s) { return s.index == 0; });

  // Subsequent view. For addresses not yet known, any later passive
  // discovery counts (including sweep-elicited ones). For addresses
  // already found in the first 12 hours, "seen again" means renewed
  // genuine client traffic — a sweep answer proves reachability, not
  // continued use, and the paper's 242 "mostly idle" early finds are
  // precisely the ones that never attract another client.
  std::unordered_set<net::Ipv4> passive_later;
  const auto& scanners = campaign.e().scan_detector().scanners();
  campaign.e().monitor().table().for_each(
      [&](const passive::ServiceKey& key,
          const passive::ServiceRecord& record) {
        const bool known_early = passive_12h.contains(key.addr);
        if (known_early
                ? record.last_flow_excluding(scanners) > boundary
                : record.first_seen > boundary) {
          passive_later.insert(key.addr);
        }
      });
  const auto active_later = core::address_times_from_scans(
      campaign.e().prober().scans(),
      [](const active::ScanRecord& s) { return s.index >= 1; });

  core::ExtendedCategorization categorization;
  for (const net::Ipv4 addr : campaign.c().scan_targets()) {
    core::ObservationVector v;
    v.passive_12h = passive_12h.contains(addr);
    v.active_12h = active_12h.contains(addr);
    v.passive_full = passive_later.contains(addr);
    v.active_full = active_later.contains(addr);
    v.transient =
        host::is_transient(campaign.c().class_of(addr));
    categorization.add(v);
  }

  // Paper counts, in the same row order as core::categorize's table.
  const char* paper[] = {"37",    "6",   "1",   "242", "99",  "1,247", "75",
                         "26",    "1",   "4",   "3",   "7",   "13,341",
                         "188",   "125", "655", "73",  "140", "31"};

  analysis::TextTable table({"12h: P A | later: P A | transient",
                             "categorization", "count", "paper"});
  const auto rows = categorization.rows();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.add_row({rows[i].pattern, rows[i].label,
                   analysis::fmt_count(rows[i].count),
                   i < std::size(paper) ? paper[i] : ""});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\ntotal addresses categorized: %s (window to %s)\n",
              analysis::fmt_count(categorization.total()).c_str(),
              campaign.c().calendar().month_day(end).c_str());
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
