// Figure 3: cumulative passive server discovery over 90 days (DTCP1-90d)
// compared with the 18-day window, over all and non-transient addresses.
#include <cstdio>

#include "analysis/export.h"
#include "analysis/table.h"
#include "bench_common.h"
#include "core/report.h"
#include "core/weighted.h"

namespace svcdisc {

int run() {
  // The paper's 35 scans all fall inside the first 18 days of the 90-day
  // passive window.
  auto campaign = bench::make_campaign(workload::CampusConfig::dtcp1_90d(),
                                       bench::dtcp1_engine_config());
  bench::print_header("Figure 3: 90-day vs 18-day passive discovery "
                      "(DTCP1-90d)",
                      campaign);

  bench::Stopwatch watch;
  campaign.e().run();
  watch.report("DTCP1-90d campaign");

  const auto end = util::kEpoch + campaign.c().config().duration;
  auto* campus = campaign.campus.get();
  core::ServiceFilter static_only;
  static_only.address_pred = [campus](net::Ipv4 addr) {
    return campus->class_of(addr) == host::AddressClass::kStatic;
  };

  const auto p_all = core::discovery_curve(
      core::address_discovery_times(campaign.e().monitor().table(), end));
  const auto p_static = core::discovery_curve(core::address_discovery_times(
      campaign.e().monitor().table(), end, static_only));

  analysis::TextTable table({"date", "Passive 90d (all)",
                             "Passive 90d (static)"});
  const auto& cal = campaign.c().calendar();
  for (int d = 0; d <= 90; d += 9) {
    const auto t = util::kEpoch + util::days(d);
    table.add_row(
        {cal.month_day(t),
         analysis::fmt_count(static_cast<std::uint64_t>(p_all.at(t))),
         analysis::fmt_count(static_cast<std::uint64_t>(p_static.at(t)))});
  }
  std::fputs(table.render().c_str(), stdout);

  const auto tail_rate_per_12h = [&](const analysis::StepCurve& curve,
                                     util::TimePoint at) {
    const double n = curve.at(at) - curve.at(at - util::days(5));
    return n / 10.0;  // per 12 hours
  };
  std::printf(
      "\ntail rates in the last 5 days: static %.2f per 12 h (paper ~1 per\n"
      "12 h), all %.2f per 12 h (paper ~8 per 12 h, one every ~1.5 h):\n"
      "transient churn keeps all-host discovery from levelling off while\n"
      "static-only flattens.\n",
      tail_rate_per_12h(p_static, end), tail_rate_per_12h(p_all, end));
  std::printf(
      "18-day marks: all %s vs 90-day %s; static %s vs %s.\n",
      analysis::fmt_count(
          static_cast<std::uint64_t>(p_all.at(util::kEpoch + util::days(18))))
          .c_str(),
      analysis::fmt_count(static_cast<std::uint64_t>(p_all.at(end))).c_str(),
      analysis::fmt_count(static_cast<std::uint64_t>(
                              p_static.at(util::kEpoch + util::days(18))))
          .c_str(),
      analysis::fmt_count(static_cast<std::uint64_t>(p_static.at(end)))
          .c_str());

  analysis::export_figure("fig3_discovery90d", "Figure 3: 90-day passive discovery",
                       {{"passive_all", &p_all, 0},
                        {"passive_static", &p_static, 0}},
                       util::kEpoch, end, 180, cal);
  std::printf("series written to fig3_discovery90d.tsv (+ fig3_discovery90d.gp)\n");
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
