// Figure 11: scatter plot of open ports in DTCPall — per host, which TCP
// ports were found open, and by which method. Emitted as a TSV scatter
// (host index, port, method) plus a per-port summary table.
#include <cstdio>
#include <fstream>
#include <map>

#include "analysis/table.h"
#include "bench_common.h"
#include "core/report.h"

namespace svcdisc {

int run() {
  core::EngineConfig engine_cfg;
  engine_cfg.scan_count = 1;
  engine_cfg.first_scan_offset = util::minutes(30);
  auto campaign =
      bench::make_campaign(workload::CampusConfig::dtcp_all(), engine_cfg);
  bench::print_header("Figure 11: open-port scatter (DTCPall)", campaign);

  bench::Stopwatch watch;
  campaign.e().run();
  watch.report("DTCPall campaign");

  // Collect (addr, port) -> method bitmask (1=active, 2=passive).
  std::map<std::pair<std::uint32_t, net::Port>, int> found;
  campaign.e().prober().table().for_each(
      [&](const passive::ServiceKey& key, const passive::ServiceRecord&) {
        found[{key.addr.value(), key.port}] |= 1;
      });
  campaign.e().monitor().table().for_each(
      [&](const passive::ServiceKey& key, const passive::ServiceRecord&) {
        found[{key.addr.value(), key.port}] |= 2;
      });

  // Host numbering: randomized order (the paper randomizes to preserve
  // privacy); we map by address offset scrambled with a fixed multiplier.
  const std::uint32_t base = campaign.c().config().campus_base.value();
  const auto host_number = [base](std::uint32_t addr) {
    return (addr - base) * 151 % 256;
  };

  std::ofstream tsv("fig11_portscatter.tsv");
  tsv << "# host\tport\tmethod\n";
  std::map<net::Port, std::array<int, 3>> per_port;  // active/passive/both
  for (const auto& [key, mask] : found) {
    const char* method = mask == 1 ? "active" : mask == 2 ? "passive" : "both";
    tsv << host_number(key.first) << '\t' << key.second << '\t' << method
        << '\n';
    auto& counts = per_port[key.second];
    counts[0] += (mask & 1) != 0;
    counts[1] += (mask & 2) != 0;
    counts[2] += mask == 3;
  }

  analysis::TextTable table({"port", "service", "active", "passive", "both"});
  for (const auto& [port, counts] : per_port) {
    if (counts[0] + counts[1] < 3) continue;  // summarize common ports only
    std::string name(net::port_name(port));
    if (name.empty()) name = "-";
    table.add_row({std::to_string(port), name, std::to_string(counts[0]),
                   std::to_string(counts[1]), std::to_string(counts[2])});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\ntotal open (host,port) pairs: %zu; scatter written to\n"
      "fig11_portscatter.tsv\n"
      "paper shape checks: passive sees every SSH/FTP server (two external\n"
      "sweeps), misses the NT-only services (epmap & friends: local-only\n"
      "traffic never crosses the border) and catches a few web servers\n"
      "born after the scan finished.\n",
      found.size());
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
