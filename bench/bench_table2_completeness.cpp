// Table 2: summary of completeness for active and passive methods at
// various durations of DTCP1-18d (12 h / 25 h / 205 h / 410 h, i.e. 1 /
// 2 / 17 / 35 scans).
#include <cstdio>

#include "analysis/table.h"
#include "bench_common.h"
#include "core/completeness.h"
#include "core/report.h"

namespace svcdisc {
namespace {

using analysis::fmt_count;
using analysis::fmt_count_pct;

struct Cut {
  const char* share;
  double hours;
  int scans;
  // Paper values for the reference row (union, both, active-only,
  // passive-only).
  int p_union, p_both, p_aonly, p_ponly;
};

constexpr Cut kCuts[] = {
    {"3%", 12, 1, 1748, 286, 1421, 41},
    {"6%", 25, 2, 1848, 1074, 716, 58},
    {"50%", 205, 17, 2551, 1738, 683, 130},
    {"100%", 410, 35, 2960, 1925, 848, 186},
};

}  // namespace

int run() {
  auto campaign = bench::make_campaign(workload::CampusConfig::dtcp1_18d(),
                                       bench::dtcp1_engine_config());
  bench::print_header(
      "Table 2: completeness of active and passive methods (DTCP1-18d)",
      campaign);

  bench::Stopwatch watch;
  campaign.e().run();
  watch.report("DTCP1-18d campaign");

  analysis::TextTable table({"Measure", "12h/1scan", "25h/2", "205h/17",
                             "410h/35"});
  std::vector<core::Completeness> cols;
  for (const Cut& cut : kCuts) {
    const auto cutoff =
        util::kEpoch + util::seconds_f(cut.hours * 3600.0);
    const auto passive =
        core::addresses_found(campaign.e().monitor().table(), cutoff);
    const auto active =
        core::addresses_found(campaign.e().prober().table(), cutoff);
    cols.push_back(core::completeness(passive, active));
  }

  const auto row = [&](const char* name, auto getter) {
    std::vector<std::string> cells{name};
    for (const auto& c : cols) {
      cells.push_back(fmt_count_pct(getter(c), c.union_count));
    }
    table.add_row(std::move(cells));
  };
  row("Total servers found (union)",
      [](const core::Completeness& c) { return c.union_count; });
  row("Passive AND Active",
      [](const core::Completeness& c) { return c.both; });
  row("Active only",
      [](const core::Completeness& c) { return c.active_only; });
  row("Passive only",
      [](const core::Completeness& c) { return c.passive_only; });
  table.add_rule();
  row("Active", [](const core::Completeness& c) { return c.active_total; });
  row("Passive", [](const core::Completeness& c) { return c.passive_total; });
  std::fputs(table.render().c_str(), stdout);

  std::printf("\npaper reference (union / both / active-only / passive-only):\n");
  for (const Cut& cut : kCuts) {
    std::printf("  %-5s %s / %s / %s / %s\n", cut.share,
                fmt_count(static_cast<std::uint64_t>(cut.p_union)).c_str(),
                fmt_count(static_cast<std::uint64_t>(cut.p_both)).c_str(),
                fmt_count(static_cast<std::uint64_t>(cut.p_aonly)).c_str(),
                fmt_count(static_cast<std::uint64_t>(cut.p_ponly)).c_str());
  }
  std::printf(
      "\nshape checks: one scan finds ~98%% of the 12-h union; 12-h passive"
      " ~19%%;\n18-d passive ~71%% vs 35-scan active ~94%%.\n");
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
