// Seed-sweep throughput bench: the same scenario across N seeds, run
// serially and then on the parallel CampaignRunner.
//
// Demonstrates the two properties the runner promises: (1) wall-clock
// speedup on multi-core hosts (campaigns are embarrassingly parallel),
// and (2) bitwise determinism — the parallel run's per-seed metrics
// export is byte-identical to the serial run's. Exits non-zero if the
// identity check fails, so this doubles as a smoke test.
//
// Knobs: SVCDISC_SWEEP_SEEDS (seed count, default 8), SVCDISC_JOBS
// (parallel thread count, default hardware concurrency), SVCDISC_SCALE.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/export.h"
#include "analysis/table.h"
#include "bench_common.h"

namespace svcdisc {
namespace {

// Per-seed metrics rendered without wall time: wall clock is the one
// field that legitimately differs between runs.
std::string stable_json(const core::CampaignResult& result) {
  analysis::MetricsExport e;
  e.label = result.label;
  e.seed = result.seed;
  e.snapshot = &result.snapshot;
  return analysis::metrics_to_json({e});
}

std::vector<core::CampaignJob> make_jobs(std::size_t count) {
  auto campus_cfg = bench::apply_scale(workload::CampusConfig::tiny());
  campus_cfg.duration = util::days(2);
  core::EngineConfig engine_cfg;
  engine_cfg.scan_count = 3;
  engine_cfg.scan_period = util::hours(12);
  engine_cfg.first_scan_offset = util::hours(1);
  return core::seed_sweep_jobs(campus_cfg, engine_cfg, 1, count);
}

}  // namespace

int run() {
  std::size_t seeds = 8;
  if (const char* env = std::getenv("SVCDISC_SWEEP_SEEDS")) {
    const long n = std::atol(env);
    if (n >= 1) seeds = static_cast<std::size_t>(n);
  }
  std::printf("== Seed sweep: serial vs parallel CampaignRunner ==\n\n");

  bench::Stopwatch serial_watch;
  const auto serial = core::CampaignRunner(1).run(make_jobs(seeds));
  const double serial_sec = serial_watch.elapsed_sec();

  const core::CampaignRunner runner;  // SVCDISC_JOBS or hardware threads
  bench::Stopwatch parallel_watch;
  const auto parallel = runner.run(make_jobs(seeds));
  const double parallel_sec = parallel_watch.elapsed_sec();

  analysis::TextTable table({"seed", "sim events", "passive disc",
                             "probes sent", "identical"});
  bool all_identical = true;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& s = serial[i];
    const auto& p = parallel[i];
    const bool same =
        s.ok() && p.ok() && stable_json(s) == stable_json(p);
    all_identical = all_identical && same;
    const auto metric = [&](const char* name) {
      return analysis::fmt_count(
          static_cast<std::size_t>(s.snapshot.value_of(name)));
    };
    table.add_row({std::to_string(s.seed), metric("sim.events_processed"),
                   metric("passive.tcp_discoveries"),
                   metric("active.probes_tcp_sent"),
                   same ? "yes" : "NO"});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\n%zu campaigns: serial %.1f s, %zu-thread runner %.1f s "
      "(speedup %.2fx)\n",
      seeds, serial_sec, runner.threads(), parallel_sec,
      parallel_sec > 0 ? serial_sec / parallel_sec : 0.0);
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: parallel metrics differ from serial run\n");
    return 1;
  }
  std::printf("parallel per-seed metrics byte-identical to serial: yes\n");
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
