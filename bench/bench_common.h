// Shared campaign plumbing for the table/figure benches.
//
// Each bench binary reproduces one table or figure of the paper. They
// share the scenario presets and an already-wired DiscoveryEngine; this
// header holds the glue so each bench stays a thin report generator.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/campaign_runner.h"
#include "core/engine.h"
#include "workload/campus.h"

namespace svcdisc::bench {

/// A campus + engine pair kept alive together.
struct Campaign {
  std::unique_ptr<workload::Campus> campus;
  std::unique_ptr<core::DiscoveryEngine> engine;

  workload::Campus& c() { return *campus; }
  core::DiscoveryEngine& e() { return *engine; }
};

/// Builds (without running) a campaign for the given scenario/engine
/// configs.
Campaign make_campaign(workload::CampusConfig campus_cfg,
                       core::EngineConfig engine_cfg);

/// DTCP1-18d with the paper's schedule: 35 scans every 12 h starting
/// 11:00. `scale` < 1 shrinks the population for quick runs
/// (SVCDISC_SCALE env var, default 1).
core::EngineConfig dtcp1_engine_config();

/// Reads SVCDISC_SCALE (default 1.0) and shrinks a config's populations
/// proportionally — used by CI-sized bench runs.
workload::CampusConfig apply_scale(workload::CampusConfig cfg);

/// Runs `jobs` on a core::CampaignRunner (SVCDISC_JOBS threads, else
/// hardware concurrency) after applying SVCDISC_SCALE to every job's
/// campus config. Reports total wall time on stderr as `label` and
/// prints any job errors; results come back in job order.
std::vector<core::CampaignResult> run_campaigns(
    std::vector<core::CampaignJob> jobs, const std::string& label);

/// Prints the standard bench header: what is being reproduced and the
/// scenario parameters.
void print_header(const std::string& experiment, const Campaign& campaign);

/// Wall-clock section timer for long simulations (stderr).
class Stopwatch {
 public:
  Stopwatch();
  double elapsed_sec() const;
  void report(const std::string& label) const;

 private:
  long long start_ns_;
};

}  // namespace svcdisc::bench
