// Table 6: server discovery broken down by service type (Web, FTP, SSH,
// MySQL) over DTCP1-18d.
#include <cstdio>

#include "analysis/table.h"
#include "bench_common.h"
#include "core/completeness.h"
#include "core/report.h"

namespace svcdisc {

int run() {
  auto campaign = bench::make_campaign(workload::CampusConfig::dtcp1_18d(),
                                       bench::dtcp1_engine_config());
  bench::print_header("Table 6: discovery by service type (DTCP1-18d)",
                      campaign);

  bench::Stopwatch watch;
  campaign.e().run();
  watch.report("DTCP1-18d campaign");

  struct Row {
    const char* name;
    net::Port port;
    const char* paper;  // union / P&A / A-only / P-only / A% / P%
  };
  const Row rows[] = {
      {"Web", net::kPortHttp, "2,120 / 1,428 / 497 / 195 / 91% / 77%"},
      {"FTP", net::kPortFtp, "815 / 566 / 241 / 8 / 99% / 70%"},
      {"SSH", net::kPortSsh, "925 / 701 / 221 / 3 / 100% / 76%"},
      {"MySQL", net::kPortMysql, "164 / 78 / 79 / 7 / 96% / 52%"},
  };

  const auto end = util::kEpoch + campaign.c().config().duration;
  analysis::TextTable table({"Service", "Total", "P&A", "Active only",
                             "Passive only", "Active", "Passive"});
  for (const Row& row : rows) {
    core::ServiceFilter filter;
    filter.port = row.port;
    const auto passive =
        core::addresses_found(campaign.e().monitor().table(), end, filter);
    const auto active =
        core::addresses_found(campaign.e().prober().table(), end, filter);
    const auto c = core::completeness(passive, active);
    table.add_row({row.name,
                   analysis::fmt_count_pct(c.union_count, c.union_count),
                   analysis::fmt_count_pct(c.both, c.union_count),
                   analysis::fmt_count_pct(c.active_only, c.union_count),
                   analysis::fmt_count_pct(c.passive_only, c.union_count),
                   analysis::fmt_count_pct(c.active_total, c.union_count),
                   analysis::fmt_count_pct(c.passive_total, c.union_count)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\npaper (union / P&A / A-only / P-only / A / P):\n");
  for (const Row& row : rows) {
    std::printf("  %-6s %s\n", row.name, row.paper);
  }
  std::printf(
      "\nshape checks: MySQL has the worst passive completeness (~52%%,\n"
      "blocked-external servers hide from the border even during the\n"
      "MySQL sweep); active finds ~all FTP and SSH.\n");
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
