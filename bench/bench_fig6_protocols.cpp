// Figure 6: server discovery over time broken down by protocol (Web,
// FTP, SSH, MySQL), as percent of each service's union ground truth.
#include <cstdio>

#include "analysis/export.h"
#include "analysis/table.h"
#include "bench_common.h"
#include "core/completeness.h"
#include "core/report.h"
#include "core/weighted.h"

namespace svcdisc {

int run() {
  auto campaign = bench::make_campaign(workload::CampusConfig::dtcp1_18d(),
                                       bench::dtcp1_engine_config());
  bench::print_header("Figure 6: discovery by protocol (DTCP1-18d)",
                      campaign);

  bench::Stopwatch watch;
  campaign.e().run();
  watch.report("DTCP1-18d campaign");

  const auto end = util::kEpoch + campaign.c().config().duration;
  struct Proto {
    const char* name;
    net::Port port;
  };
  const Proto protos[] = {{"Web", net::kPortHttp},
                          {"FTP", net::kPortFtp},
                          {"SSH", net::kPortSsh},
                          {"MySQL", net::kPortMysql}};

  std::vector<analysis::StepCurve> curves;
  std::vector<analysis::NamedCurve> named;
  std::vector<double> unions;
  curves.reserve(8);
  for (const Proto& proto : protos) {
    core::ServiceFilter filter;
    filter.port = proto.port;
    const auto p_times = core::address_discovery_times(
        campaign.e().monitor().table(), end, filter);
    const auto a_times = core::address_times_from_scans(
        campaign.e().prober().scans(), nullptr, filter);
    std::unordered_set<net::Ipv4> u;
    for (const auto& [addr, t] : p_times) u.insert(addr);
    for (const auto& [addr, t] : a_times) u.insert(addr);
    unions.push_back(static_cast<double>(u.size()));
    curves.push_back(core::discovery_curve(a_times));
    curves.push_back(core::discovery_curve(p_times));
  }

  analysis::TextTable table({"date", "A Web", "P Web", "A FTP", "P FTP",
                             "A SSH", "P SSH", "A MySQL", "P MySQL"});
  const auto& cal = campaign.c().calendar();
  for (int d = 0; d <= 18; d += 3) {
    const auto t = util::kEpoch + util::days(d);
    std::vector<std::string> cells{cal.month_day(t)};
    for (std::size_t i = 0; i < 4; ++i) {
      cells.push_back(analysis::fmt_pct(
          unions[i] > 0 ? 100.0 * curves[2 * i].at(t) / unions[i] : 0));
      cells.push_back(analysis::fmt_pct(
          unions[i] > 0 ? 100.0 * curves[2 * i + 1].at(t) / unions[i] : 0));
    }
    table.add_row(std::move(cells));
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\npaper shape checks: stepped jumps in passive MySQL discovery at\n"
      "external sweeps, but blocked-external servers keep passive MySQL\n"
      "lowest (~52%%); SSH/FTP reach ~100%% actively while passive trails\n"
      "(~70-76%%): idle workstation/legacy servers.\n");

  for (std::size_t i = 0; i < 4; ++i) {
    named.push_back({std::string("active_") + protos[i].name,
                     &curves[2 * i], unions[i]});
    named.push_back({std::string("passive_") + protos[i].name,
                     &curves[2 * i + 1], unions[i]});
  }
  analysis::export_figure("fig6_protocols", "Figure 6: discovery by protocol", named, util::kEpoch, end,
                       18 * 8, cal);
  std::printf("series written to fig6_protocols.tsv (+ fig6_protocols.gp)\n");
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
