// Table 5: content served by detected web servers. Each discovered web
// server's root page is fetched within a day of discovery (transient
// hosts are often gone by then -> "no response") and categorized by the
// signature engine.
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "analysis/table.h"
#include "bench_common.h"
#include "core/report.h"
#include "webcat/categorizer.h"
#include "webcat/fetcher.h"

namespace svcdisc {
namespace {

using host::WebContent;

}  // namespace

int run() {
  auto campaign = bench::make_campaign(workload::CampusConfig::dtcp1_18d(),
                                       bench::dtcp1_engine_config());
  bench::print_header("Table 5: web server root-page content (DTCP1-18d)",
                      campaign);

  // Schedule a fetch one day after each first discovery of a web server.
  webcat::Categorizer categorizer;
  std::unordered_map<net::Ipv4, WebContent> category;
  std::unordered_set<net::Ipv4> fetch_scheduled;
  auto* campus = campaign.campus.get();
  auto& sim = campus->simulator();
  const auto schedule_fetch = [&](const passive::ServiceKey& key,
                                  util::TimePoint when) {
    if (key.proto != net::Proto::kTcp || key.port != net::kPortHttp) return;
    if (!fetch_scheduled.insert(key.addr).second) return;
    sim.at(when + util::days(1), [&, addr = key.addr] {
      category[addr] = categorizer.categorize(webcat::fetch_root_page(
          campus->host_at(addr), sim.now()));
    });
  };
  campaign.e().monitor().on_discovery = schedule_fetch;
  campaign.e().prober().on_discovery = schedule_fetch;

  bench::Stopwatch watch;
  campaign.e().run();
  // Let fetches scheduled near the end of the campaign fire.
  sim.run_until(util::kEpoch + campus->config().duration + util::days(2));
  watch.report("DTCP1-18d campaign + fetches");

  const auto end = util::kEpoch + util::days(30);
  core::ServiceFilter web;
  web.port = net::kPortHttp;
  const auto passive =
      core::addresses_found(campaign.e().monitor().table(), end, web);
  const auto active =
      core::addresses_found(campaign.e().prober().table(), end, web);

  struct Row {
    WebContent content;
    const char* paper_union;
  };
  const Row rows[] = {
      {WebContent::kCustom, "170"},    {WebContent::kDefault, "493"},
      {WebContent::kMinimal, "11"},    {WebContent::kConfigStatus, "683"},
      {WebContent::kDatabase, "61"},   {WebContent::kRestricted, "17"},
      {WebContent::kNoResponse, "685"},
  };

  analysis::TextTable table({"Page type", "Total", "P&A", "Active only",
                             "Passive only", "Active", "Passive", "paper"});
  for (const Row& row : rows) {
    std::uint64_t total = 0, both = 0, a_only = 0, p_only = 0;
    for (const auto& [addr, content] : category) {
      if (content != row.content) continue;
      const bool p = passive.contains(addr);
      const bool a = active.contains(addr);
      if (!p && !a) continue;
      ++total;
      both += p && a;
      a_only += a && !p;
      p_only += p && !a;
    }
    table.add_row({std::string(webcat::web_content_name(row.content)),
                   analysis::fmt_count(total), analysis::fmt_count(both),
                   analysis::fmt_count(a_only), analysis::fmt_count(p_only),
                   analysis::fmt_count(both + a_only),
                   analysis::fmt_count(both + p_only), row.paper_union});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nshape checks: passive finds ~all custom-content servers; most\n"
      "'no response' fetches are transient hosts gone by fetch time.\n");
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
