// Ablation: passive completeness under impaired capture (§4 revisited).
//
// The paper's passive numbers assume the monitor sees every border
// packet; §5.3 concedes full capture "becomes hard at very high
// bitrates". This bench reruns the completeness comparison with the
// fault-injection stage in front of every tap, sweeping loss rate under
// both the i.i.d. and the Gilbert-Elliott (bursty) model at matched
// long-run rates. Burstiness is the interesting axis: at equal average
// loss, correlated drops erase whole scan-response bursts — exactly the
// packets that carry one-off discovery evidence — while i.i.d. loss
// mostly thins flows that repeat anyway.
#include <cstdio>
#include <vector>

#include "analysis/table.h"
#include "bench_common.h"
#include "capture/impairment.h"
#include "core/completeness.h"
#include "core/report.h"

namespace svcdisc {

int run() {
  std::printf("== Ablation: completeness vs capture loss ==\n\n");

  const auto campus_cfg = workload::CampusConfig::dtcp1_18d();
  const auto engine_cfg = bench::dtcp1_engine_config();

  struct Row {
    const char* model;
    double rate;
  };
  const std::vector<Row> rows = {
      {"none", 0.0},    {"iid", 0.02},    {"bursty", 0.02},
      {"iid", 0.05},    {"bursty", 0.05}, {"iid", 0.10},
      {"bursty", 0.10}, {"iid", 0.20},    {"bursty", 0.20},
  };

  std::vector<core::CampaignJob> jobs;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    core::CampaignJob job;
    job.campus_cfg = campus_cfg;
    job.engine_cfg = engine_cfg;
    job.seed = campus_cfg.seed;  // identical traffic in every row
    if (rows[i].rate > 0) {
      job.engine_cfg.impairment =
          rows[i].model[0] == 'i'
              ? capture::ImpairmentConfig::iid(rows[i].rate, 0xC0DE + i)
              : capture::ImpairmentConfig::bursty(rows[i].rate, 8.0,
                                                  0xC0DE + i);
    }
    job.label = rows[i].model;
    jobs.push_back(std::move(job));
  }
  auto results =
      bench::run_campaigns(std::move(jobs), "capture-loss sweep (9 rows)");

  double baseline = 0;
  analysis::TextTable table({"model", "loss", "passive", "union%",
                             "vs lossless%"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    auto& r = results[i];
    if (!r.ok()) continue;
    const auto end = util::kEpoch + r.c().config().duration;
    const auto passive = core::addresses_found(r.e().monitor().table(), end);
    const auto active = core::addresses_found(r.e().prober().table(), end);
    const auto c = core::completeness(passive, active);
    if (i == 0) baseline = static_cast<double>(c.passive_total);
    char loss_s[16];
    std::snprintf(loss_s, sizeof loss_s, "%.0f%%", rows[i].rate * 100);
    table.add_row({rows[i].model, loss_s,
                   analysis::fmt_count(c.passive_total),
                   analysis::fmt_pct(c.passive_pct()),
                   analysis::fmt_pct(baseline > 0
                                         ? 100.0 * c.passive_total / baseline
                                         : 0)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nsame campaign seed in every row; only the impairment differs.\n"
      "bursty loss (Gilbert-Elliott, mean burst 8 pkts) costs more\n"
      "completeness than i.i.d. loss at the same average rate: a burst\n"
      "can swallow an entire SYN-ACK response train, while independent\n"
      "drops are papered over by retransmissions and repeat flows.\n");
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
