// Figure 8: cumulative passive server discovery under fixed-period
// sampling (first 2/5/10/30 minutes of every hour) versus continuous
// monitoring, plus the count-based and probabilistic samplers the paper
// leaves as future work.
#include <cstdio>

#include "analysis/export.h"
#include "analysis/table.h"
#include "bench_common.h"
#include "capture/sampler.h"
#include "core/report.h"
#include "core/weighted.h"

namespace svcdisc {

int run() {
  auto campaign = bench::make_campaign(workload::CampusConfig::dtcp1_18d(),
                                       bench::dtcp1_engine_config());

  const int kMinutes[] = {2, 5, 10, 30};
  std::vector<passive::PassiveMonitor*> sampled;
  for (const int m : kMinutes) {
    sampled.push_back(&campaign.e().add_sampled_monitor(
        std::make_unique<capture::FixedPeriodSampler>(util::minutes(m),
                                                      util::hours(1))));
  }
  // Future-work samplers at ~16% coverage for comparison with 10 min/h.
  auto& probabilistic = campaign.e().add_sampled_monitor(
      std::make_unique<capture::ProbabilisticSampler>(10.0 / 60.0, 7));
  auto& count_based = campaign.e().add_sampled_monitor(
      std::make_unique<capture::CountSampler>(1, 5));

  bench::print_header("Figure 8: fixed-period sampling (DTCP1-18d)",
                      campaign);
  bench::Stopwatch watch;
  campaign.e().run();
  watch.report("DTCP1-18d campaign");

  const auto end = util::kEpoch + campaign.c().config().duration;
  const auto full = core::addresses_found(campaign.e().monitor().table(), end);
  const double denom = static_cast<double>(full.size());

  analysis::TextTable table({"sampling", "capture share", "servers",
                             "% of continuous"});
  std::vector<analysis::StepCurve> curves;
  const auto add = [&](const std::string& name, double share,
                       passive::PassiveMonitor& monitor) {
    const auto times =
        core::address_discovery_times(monitor.table(), end);
    char share_text[16];
    std::snprintf(share_text, sizeof share_text, "%.0f%%", 100 * share);
    table.add_row({name, share_text,
                   analysis::fmt_count(times.size()),
                   analysis::fmt_pct(100.0 * static_cast<double>(times.size()) /
                                     denom)});
    curves.push_back(core::discovery_curve(times));
  };
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    add(std::to_string(kMinutes[i]) + " min/hour", kMinutes[i] / 60.0,
        *sampled[i]);
  }
  add("probabilistic p=1/6", 1.0 / 6.0, probabilistic);
  add("count-based 1-in-6", 1.0 / 6.0, count_based);
  table.add_rule();
  table.add_row({"no sampling", "100%", analysis::fmt_count(full.size()),
                 "100%"});
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\npaper shape checks: 30 min/h loses only ~5%% of servers; 10 min/h\n"
      "~11%%: the relationship is far from linear because short wide scans\n"
      "either land inside a capture window (full credit) or miss it\n"
      "entirely. Per-packet samplers at the same share spread the loss:\n"
      "they thin every sweep instead of gambling on window alignment\n"
      "(see bench_ablation_sampling for the full strategy grid).\n");

  std::vector<analysis::NamedCurve> named;
  const char* names[] = {"min2", "min5", "min10", "min30", "prob", "count"};
  for (std::size_t i = 0; i < curves.size(); ++i) {
    named.push_back({names[i], &curves[i], denom});
  }
  analysis::export_figure("fig8_sampling", "Figure 8: fixed-period sampling", named, util::kEpoch, end, 18 * 8,
                       campaign.c().calendar());
  std::printf("series written to fig8_sampling.tsv (+ fig8_sampling.gp)\n");
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
