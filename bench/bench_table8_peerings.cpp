// Table 8: servers found on each monitored peering link, duplicative and
// exclusive — DTCP1-18d (two commercial links) and DTCPbreak (plus
// Internet2).
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "analysis/table.h"
#include "bench_common.h"
#include "core/report.h"

namespace svcdisc {
namespace {

struct LinkResult {
  std::string name;
  std::uint64_t duplicative{0};
  std::uint64_t exclusive{0};
};

struct DatasetResult {
  std::vector<LinkResult> links;
  std::uint64_t all{0};
};

DatasetResult run_dataset(workload::CampusConfig cfg,
                          core::EngineConfig engine_cfg,
                          const char* label) {
  auto campaign = bench::make_campaign(std::move(cfg), engine_cfg);
  bench::Stopwatch watch;
  campaign.e().run();
  watch.report(label);

  const auto end = util::kEpoch + campaign.c().config().duration;
  DatasetResult result;
  std::vector<std::unordered_set<net::Ipv4>> per_link;
  for (std::size_t i = 0; i < campaign.e().link_monitor_count(); ++i) {
    per_link.push_back(
        core::addresses_found(campaign.e().link_monitor(i).table(), end));
  }
  result.all =
      core::addresses_found(campaign.e().monitor().table(), end).size();

  for (std::size_t i = 0; i < per_link.size(); ++i) {
    LinkResult link;
    link.name = campaign.e().tap(i).name();
    link.duplicative = per_link[i].size();
    for (const net::Ipv4 addr : per_link[i]) {
      bool elsewhere = false;
      for (std::size_t j = 0; j < per_link.size(); ++j) {
        if (j != i && per_link[j].contains(addr)) elsewhere = true;
      }
      link.exclusive += !elsewhere;
    }
    result.links.push_back(std::move(link));
  }
  return result;
}

void print_dataset(const char* title, const DatasetResult& result) {
  std::printf("%s\n", title);
  analysis::TextTable table({"link", "duplicative", "exclusive"});
  for (const LinkResult& link : result.links) {
    table.add_row({link.name,
                   analysis::fmt_count_pct(link.duplicative, result.all),
                   analysis::fmt_count_pct(link.exclusive, result.all)});
  }
  table.add_rule();
  table.add_row({"all", analysis::fmt_count(result.all), "-"});
  std::fputs(table.render().c_str(), stdout);
  std::printf("\n");
}

}  // namespace

int run() {
  std::printf("== Table 8: servers found per monitored peering ==\n\n");

  auto engine_cfg = bench::dtcp1_engine_config();
  engine_cfg.per_link_monitors = true;
  const auto d18 = run_dataset(workload::CampusConfig::dtcp1_18d(),
                               engine_cfg, "DTCP1-18d campaign");
  print_dataset("DTCP1-18d (two commercial peerings):", d18);

  auto break_engine = engine_cfg;
  break_engine.scan_count = 22;  // every 12 h over 11 days
  const auto brk = run_dataset(workload::CampusConfig::dtcp_break(),
                               break_engine, "DTCPbreak campaign");
  print_dataset("DTCPbreak (commercial + Internet2):", brk);

  std::printf(
      "paper: DTCP1-18d commercial1 1,874 (89%%)/201 (9.5%%), commercial2\n"
      "1,874 (89%%)/39 (1.8%%), all 2,111; DTCPbreak commercial1 1,770\n"
      "(96%%)/59, commercial2 1,711 (93%%)/1, Internet2 669 (36%%)/3,\n"
      "all 1,835.\n"
      "shape checks: any single commercial link sees ~90%% of servers;\n"
      "Internet2's AUP-limited clients see far fewer; exclusive servers\n"
      "are the rarely-contacted ones.\n");
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
