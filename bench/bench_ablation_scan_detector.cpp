// Ablation: external-scan detector thresholds.
//
// The paper uses 100 unique targets + 100 RST responders per 12-hour
// window (§4.3). This bench sweeps the thresholds and reports, against
// the scenario's ground-truth scanner list, how many genuine scanners
// are flagged (recall), how many flagged sources are genuine
// (precision), and how much passive discovery the resulting cleaning
// removes.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/table.h"
#include "bench_common.h"
#include "core/report.h"
#include "passive/scan_detector.h"

namespace svcdisc {

int run() {
  std::printf("== Ablation: scan-detector thresholds (DTCP1-18d) ==\n\n");

  // One campaign; several detectors observing the same taps in parallel.
  auto campus_cfg = workload::CampusConfig::dtcp1_18d();
  core::EngineConfig engine_cfg;
  engine_cfg.scan_count = 0;  // passive-only: detectors see border traffic
  auto campaign = bench::make_campaign(campus_cfg, engine_cfg);

  const std::uint32_t kThresholds[] = {10, 25, 50, 100, 250, 500};
  std::vector<std::unique_ptr<passive::ScanDetector>> detectors;
  for (const std::uint32_t threshold : kThresholds) {
    passive::ScanDetectorConfig cfg;
    cfg.target_threshold = threshold;
    cfg.rst_threshold = threshold;
    detectors.push_back(std::make_unique<passive::ScanDetector>(
        cfg, campaign.c().internal_prefixes()));
    campaign.e().add_tap_consumer(detectors.back().get());
  }

  bench::Stopwatch watch;
  campaign.e().run();
  watch.report("DTCP1-18d campaign");

  const auto genuine = campaign.c().scanners().scanner_sources();
  const auto is_genuine = [&](net::Ipv4 addr) {
    return std::find(genuine.begin(), genuine.end(), addr) != genuine.end();
  };

  analysis::TextTable table({"threshold", "flagged", "true positives",
                             "false positives", "recall", "precision"});
  for (std::size_t i = 0; i < detectors.size(); ++i) {
    const auto& flagged = detectors[i]->scanners();
    std::size_t tp = 0;
    for (const net::Ipv4 addr : flagged) tp += is_genuine(addr);
    const std::size_t fp = flagged.size() - tp;
    table.add_row(
        {std::to_string(kThresholds[i]), analysis::fmt_count(flagged.size()),
         analysis::fmt_count(tp), analysis::fmt_count(fp),
         analysis::fmt_pct(genuine.empty()
                               ? 0.0
                               : 100.0 * static_cast<double>(tp) /
                                     static_cast<double>(genuine.size())),
         analysis::fmt_pct(flagged.empty()
                               ? 100.0
                               : 100.0 * static_cast<double>(tp) /
                                     static_cast<double>(flagged.size()))});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nground truth: %zu genuine scanner sources.\n"
      "the paper's 100/100 choice sits on the plateau: low thresholds add\n"
      "no false positives here because even busy genuine clients talk to\n"
      "few distinct campus hosts, while very high thresholds start missing\n"
      "the smaller sweeps.\n",
      genuine.size());
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
