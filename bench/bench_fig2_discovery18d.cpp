// Figure 2: cumulative server discovery over 18 days, for passive
// monitoring and periodic active probes, over all addresses and over
// non-transient (static) addresses only.
#include <cstdio>

#include "analysis/export.h"
#include "analysis/table.h"
#include "bench_common.h"
#include "core/report.h"
#include "core/weighted.h"

namespace svcdisc {

int run() {
  auto campaign = bench::make_campaign(workload::CampusConfig::dtcp1_18d(),
                                       bench::dtcp1_engine_config());
  bench::print_header("Figure 2: 18-day cumulative discovery (DTCP1-18d)",
                      campaign);

  bench::Stopwatch watch;
  campaign.e().run();
  watch.report("DTCP1-18d campaign");

  const auto end = util::kEpoch + campaign.c().config().duration;
  auto* campus = campaign.campus.get();
  core::ServiceFilter static_only;
  static_only.address_pred = [campus](net::Ipv4 addr) {
    return campus->class_of(addr) == host::AddressClass::kStatic;
  };

  const auto p_all = core::discovery_curve(
      core::address_discovery_times(campaign.e().monitor().table(), end));
  const auto a_all = core::discovery_curve(core::address_times_from_scans(
      campaign.e().prober().scans(), nullptr));
  const auto p_static = core::discovery_curve(core::address_discovery_times(
      campaign.e().monitor().table(), end, static_only));
  const auto a_static = core::discovery_curve(core::address_times_from_scans(
      campaign.e().prober().scans(), nullptr, static_only));

  analysis::TextTable table({"date", "Passive(all)", "Active(all)",
                             "Passive(static)", "Active(static)"});
  const auto& cal = campaign.c().calendar();
  for (int d = 0; d <= 18; d += 2) {
    const auto t = util::kEpoch + util::days(d);
    table.add_row({cal.month_day(t),
                   analysis::fmt_count(
                       static_cast<std::uint64_t>(p_all.at(t))),
                   analysis::fmt_count(
                       static_cast<std::uint64_t>(a_all.at(t))),
                   analysis::fmt_count(
                       static_cast<std::uint64_t>(p_static.at(t))),
                   analysis::fmt_count(
                       static_cast<std::uint64_t>(a_static.at(t)))});
  }
  std::fputs(table.render().c_str(), stdout);

  // Tail discovery rates (last five days), the paper's levelling-off
  // metric (§4.2.1).
  const auto tail_rate = [&](const analysis::StepCurve& curve) {
    const double n = curve.at(end) - curve.at(end - util::days(5));
    return n / (5.0 * 24.0);  // servers per hour
  };
  std::printf(
      "\ntail discovery rate (last 5 days): passive all %.2f/h (paper ~1/h),"
      "\npassive static %.2f/h (paper ~1 per 3 h); active keeps finding\n"
      "new transient addresses each scan.\n",
      tail_rate(p_all), tail_rate(p_static));

  analysis::export_figure("fig2_discovery18d", "Figure 2: 18-day cumulative discovery",
                       {{"passive_all", &p_all, 0},
                        {"active_all", &a_all, 0},
                        {"passive_static", &p_static, 0},
                        {"active_static", &a_static, 0}},
                       util::kEpoch, end, 18 * 8, cal);
  std::printf("series written to fig2_discovery18d.tsv (+ fig2_discovery18d.gp)\n");
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
