// Ablation: sampling strategy grid (the paper's §5.3 future work).
//
// The paper evaluates only fixed-period sampling and names two
// alternatives — count-based and probabilistic — as future work. This
// bench runs all three strategy families at matched capture shares over
// one campaign and compares discovery completeness, showing why
// per-packet strategies degrade more gracefully: a fixed window either
// contains a whole scan burst or misses it.
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/table.h"
#include "bench_common.h"
#include "capture/sampler.h"
#include "core/report.h"

namespace svcdisc {

int run() {
  std::printf("== Ablation: sampling strategies at matched shares ==\n\n");

  auto campaign = bench::make_campaign(workload::CampusConfig::dtcp1_18d(),
                                       bench::dtcp1_engine_config());

  struct Cell {
    std::string label;
    passive::PassiveMonitor* monitor;
  };
  std::vector<Cell> cells;
  const int kMinutes[] = {2, 5, 10, 30};
  for (const int m : kMinutes) {
    cells.push_back(
        {"fixed " + std::to_string(m) + "min/h",
         &campaign.e().add_sampled_monitor(
             std::make_unique<capture::FixedPeriodSampler>(
                 util::minutes(m), util::hours(1)))});
    const double share = m / 60.0;
    cells.push_back(
        {"probabilistic p=" + std::to_string(m) + "/60",
         &campaign.e().add_sampled_monitor(
             std::make_unique<capture::ProbabilisticSampler>(
                 share, 0x5A17 + static_cast<std::uint64_t>(m)))});
    cells.push_back(
        {"count 1-in-" + std::to_string(60 / m),
         &campaign.e().add_sampled_monitor(
             std::make_unique<capture::CountSampler>(
                 1, static_cast<std::uint64_t>(60 / m - 1)))});
  }

  bench::Stopwatch watch;
  campaign.e().run();
  watch.report("DTCP1-18d campaign with 12 sampled monitors");

  const auto end = util::kEpoch + campaign.c().config().duration;
  const double denom = static_cast<double>(
      core::addresses_found(campaign.e().monitor().table(), end).size());

  analysis::TextTable table({"share", "fixed-period", "probabilistic",
                             "count-based"});
  for (std::size_t row = 0; row < std::size(kMinutes); ++row) {
    char share_text[16];
    std::snprintf(share_text, sizeof share_text, "%d min/h (%.0f%%)",
                  kMinutes[row], kMinutes[row] / 60.0 * 100);
    std::vector<std::string> cols{share_text};
    for (std::size_t kind = 0; kind < 3; ++kind) {
      const auto& cell = cells[row * 3 + kind];
      const double found = static_cast<double>(
          core::addresses_found(cell.monitor->table(), end).size());
      cols.push_back(analysis::fmt_pct(100.0 * found / denom));
    }
    table.add_row(std::move(cols));
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nvalues are %% of the unsampled monitor's %0.f servers.\n"
      "fixed windows win when whole scan bursts land inside a window and\n"
      "lose badly when they don't; per-packet strategies see a thin slice\n"
      "of *every* burst, so they keep the popular-traffic servers but\n"
      "convert each sweep into a partial sweep. The paper's observation\n"
      "that the sampling/coverage relationship is non-linear (§5.3) holds\n"
      "for all three families.\n",
      denom);
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
