// Figure 10: cumulative server discovery over all ten days of DTCPall
// (all known ports, one active scan, ten days of passive monitoring).
#include <cstdio>

#include "analysis/export.h"
#include "analysis/table.h"
#include "bench_common.h"
#include "core/report.h"
#include "core/weighted.h"

namespace svcdisc {

int run() {
  core::EngineConfig engine_cfg;
  engine_cfg.scan_count = 1;
  engine_cfg.first_scan_offset = util::minutes(30);
  auto campaign =
      bench::make_campaign(workload::CampusConfig::dtcp_all(), engine_cfg);
  bench::print_header("Figure 10: all-port discovery over 10 days (DTCPall)",
                      campaign);

  bench::Stopwatch watch;
  campaign.e().run();
  watch.report("DTCPall campaign");

  const auto end = util::kEpoch + campaign.c().config().duration;
  const auto passive = core::discovery_curve(
      core::address_discovery_times(campaign.e().monitor().table(), end));
  const auto active = core::discovery_curve(core::address_times_from_scans(
      campaign.e().prober().scans(), nullptr));

  analysis::TextTable table({"date", "Passive", "Active"});
  const auto& cal = campaign.c().calendar();
  for (int d = 0; d <= 10; ++d) {
    const auto t = util::kEpoch + util::days(d);
    table.add_row(
        {cal.month_day(t),
         analysis::fmt_count(static_cast<std::uint64_t>(passive.at(t))),
         analysis::fmt_count(static_cast<std::uint64_t>(active.at(t)))});
  }
  std::fputs(table.render().c_str(), stdout);

  const double p_total = passive.at(end);
  const double a_total = active.at(end);
  const double union_estimate =
      static_cast<double>([&] {
        std::unordered_set<net::Ipv4> u;
        for (const auto& [addr, t] : core::address_discovery_times(
                 campaign.e().monitor().table(), end)) {
          u.insert(addr);
        }
        for (const auto& [addr, t] : core::address_times_from_scans(
                 campaign.e().prober().scans(), nullptr)) {
          u.insert(addr);
        }
        return u.size();
      }());
  std::printf(
      "\nat 10 days: passive %.0f, active(1 scan) %.0f, union %.0f servers:\n"
      "passive tops out around %.0f%% of the union (paper: 131 servers,\n"
      "slightly over 50%%), because all-port mode exposes many local-only\n"
      "NT/epmap services passive can never see at the border.\n",
      p_total, a_total, union_estimate, 100.0 * p_total / union_estimate);

  analysis::export_figure("fig10_allports10d", "Figure 10: all-port discovery over 10 days",
                       {{"passive", &passive, 0}, {"active", &active, 0}},
                       util::kEpoch, end, 120, cal);
  std::printf("series written to fig10_allports10d.tsv (+ fig10_allports10d.gp)\n");
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
