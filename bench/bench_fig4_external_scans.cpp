// Figure 4: cumulative passive server discovery with and without the
// effect of external network scans. The "without" monitor suppresses
// discoveries whose triggering response answered a source flagged by the
// scan detector (the paper's 100-target/100-RST rule).
#include <cstdio>

#include "analysis/export.h"
#include "analysis/table.h"
#include "bench_common.h"
#include "core/report.h"
#include "core/weighted.h"

namespace svcdisc {

int run() {
  auto engine_cfg = bench::dtcp1_engine_config();
  engine_cfg.scanner_excluded_monitor = true;
  auto campaign = bench::make_campaign(workload::CampusConfig::dtcp1_18d(),
                                       engine_cfg);
  bench::print_header(
      "Figure 4: passive discovery with/without external scans (DTCP1-18d)",
      campaign);

  bench::Stopwatch watch;
  campaign.e().run();
  watch.report("DTCP1-18d campaign");

  const auto end = util::kEpoch + campaign.c().config().duration;
  const auto with_scans = core::discovery_curve(
      core::address_discovery_times(campaign.e().monitor().table(), end));
  const auto without_scans = core::discovery_curve(
      core::address_discovery_times(campaign.e().excluded_monitor()->table(),
                                    end));

  analysis::TextTable table({"date", "with external scans",
                             "scans mitigated"});
  const auto& cal = campaign.c().calendar();
  for (int d = 0; d <= 18; d += 1) {
    const auto t = util::kEpoch + util::days(d);
    table.add_row(
        {cal.month_day(t),
         analysis::fmt_count(static_cast<std::uint64_t>(with_scans.at(t))),
         analysis::fmt_count(
             static_cast<std::uint64_t>(without_scans.at(t)))});
  }
  std::fputs(table.render().c_str(), stdout);

  const double with_total = with_scans.at(end);
  const double without_total = without_scans.at(end);
  std::printf(
      "\nat 18 days: %0.f with scans vs %0.f without: removing %u flagged\n"
      "scanner sources costs %.0f%% of passive discoveries (paper: 36%%,\n"
      "2,111 vs 1,332, 65 scanners).\n",
      with_total, without_total,
      static_cast<unsigned>(campaign.e().scan_detector().scanner_count()),
      100.0 * (with_total - without_total) / with_total);

  // "Equivalent days of monitoring" the scans buy: when does the
  // no-scans curve reach the with-scans day-3 level?
  const double day3 = with_scans.at(util::kEpoch + util::days(3));
  const auto catch_up = without_scans.time_to_reach(day3);
  if (catch_up <= end) {
    std::printf(
        "the with-scans day-3 level (%.0f servers) takes the mitigated\n"
        "monitor %.1f days to reach: external scans bought ~%.0f days\n"
        "(paper: 9-15 days of equivalent observation).\n",
        day3, catch_up.days(), catch_up.days() - 3.0);
  } else {
    std::printf(
        "the mitigated monitor never reaches the with-scans day-3 level\n"
        "(%.0f servers) within 18 days (paper: equivalent to 9-15 days of\n"
        "extra observation).\n",
        day3);
  }

  analysis::export_figure("fig4_external_scans", "Figure 4: passive discovery with/without external scans",
                       {{"with_scans", &with_scans, 0},
                        {"scans_mitigated", &without_scans, 0}},
                       util::kEpoch, end, 18 * 8, cal);
  std::printf("series written to fig4_external_scans.tsv (+ fig4_external_scans.gp)\n");
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
