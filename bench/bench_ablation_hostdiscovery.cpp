// Ablation: ping-based host discovery in the active prober.
//
// The paper deliberately omits this optimization ("we expect that this
// process would be much faster if host scanning eliminated probes of
// unpopulated addresses, but we omit this optimization", §5.4). This
// bench quantifies the trade: scan duration shrinks roughly with the
// live-host fraction, but ping-silent hosts (live TCP services, ICMP
// dropped) are skipped entirely.
#include <cstdio>

#include "analysis/table.h"
#include "bench_common.h"
#include "core/report.h"

namespace svcdisc {
namespace {

struct Result {
  double scan_minutes;
  std::size_t probes;
  std::size_t servers;
  std::uint32_t alive;
};

Result run_one(bool host_discovery) {
  auto campus_cfg = workload::CampusConfig::dtcp1_18d();
  campus_cfg.duration = util::days(1);
  core::EngineConfig engine_cfg;
  engine_cfg.scan_count = 0;  // we drive the scan by hand
  auto campaign = bench::make_campaign(campus_cfg, engine_cfg);
  campaign.c().start();
  campaign.c().simulator().run_until(util::kEpoch + util::hours(1));

  active::ScanSpec spec;
  spec.targets = campaign.c().scan_targets();
  spec.tcp_ports = campaign.c().tcp_ports();
  spec.probes_per_sec = campaign.c().config().probe_rate_per_sec;
  spec.host_discovery = host_discovery;
  Result result{};
  bool done = false;
  campaign.e().prober().start_scan(spec, [&](const active::ScanRecord& r) {
    done = true;
    result.scan_minutes =
        static_cast<double>((r.finished - r.started).usec) / 6e7;
    result.probes = r.outcomes.size();
    result.alive = r.hosts_alive;
  });
  while (!done && campaign.c().simulator().step()) {
  }
  result.servers = core::addresses_found(campaign.e().prober().table(),
                                         campaign.c().simulator().now())
                       .size();
  return result;
}

}  // namespace

int run() {
  std::printf("== Ablation: ping-based host discovery (one DTCP1 scan) ==\n\n");
  bench::Stopwatch watch;
  const Result plain = run_one(false);
  const Result discovery = run_one(true);
  watch.report("two single-scan campaigns");

  analysis::TextTable table({"mode", "scan duration", "port probes",
                             "hosts alive", "servers found"});
  char minutes[32];
  std::snprintf(minutes, sizeof minutes, "%.0f min", plain.scan_minutes);
  table.add_row({"full walk (paper)", minutes,
                 analysis::fmt_count(plain.probes), "-",
                 analysis::fmt_count(plain.servers)});
  std::snprintf(minutes, sizeof minutes, "%.0f min", discovery.scan_minutes);
  table.add_row({"ping pre-pass", minutes,
                 analysis::fmt_count(discovery.probes),
                 analysis::fmt_count(discovery.alive),
                 analysis::fmt_count(discovery.servers)});
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nhost discovery cut the scan by %.0f%% (%zu -> %zu probes) but\n"
      "missed %zu servers (%.1f%%): live hosts that drop ICMP echo. For\n"
      "vulnerability work that miss rate is why the paper's operators\n"
      "walked the whole space.\n",
      100.0 * (plain.scan_minutes - discovery.scan_minutes) /
          plain.scan_minutes,
      plain.probes, discovery.probes, plain.servers - discovery.servers,
      plain.servers == 0
          ? 0.0
          : 100.0 *
                static_cast<double>(plain.servers - discovery.servers) /
                static_cast<double>(plain.servers));
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
