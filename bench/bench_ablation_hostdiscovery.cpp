// Ablation: ping-based host discovery in the active prober.
//
// The paper deliberately omits this optimization ("we expect that this
// process would be much faster if host scanning eliminated probes of
// unpopulated addresses, but we omit this optimization", §5.4). This
// bench quantifies the trade: scan duration shrinks roughly with the
// live-host fraction, but ping-silent hosts (live TCP services, ICMP
// dropped) are skipped entirely.
#include <array>
#include <cstdio>

#include "analysis/table.h"
#include "bench_common.h"
#include "core/report.h"

namespace svcdisc {
namespace {

struct Result {
  double scan_minutes;
  std::size_t probes;
  std::size_t servers;
  std::uint32_t alive;
};

// The two modes are independent campaigns, so they run as CampaignRunner
// jobs with a custom drive (warm-up, then one hand-driven scan). Each
// drive writes only its own slot in `out`.
core::CampaignJob make_job(bool host_discovery, Result* out) {
  core::CampaignJob job;
  job.campus_cfg = workload::CampusConfig::dtcp1_18d();
  job.campus_cfg.duration = util::days(1);
  job.seed = job.campus_cfg.seed;
  job.engine_cfg.scan_count = 0;  // we drive the scan by hand
  job.label = host_discovery ? "ping pre-pass" : "full walk";
  job.drive = [host_discovery, out](workload::Campus& campus,
                                    core::DiscoveryEngine& engine) {
    campus.start();
    campus.simulator().run_until(util::kEpoch + util::hours(1));

    active::ScanSpec spec;
    spec.targets = campus.scan_targets();
    spec.tcp_ports = campus.tcp_ports();
    spec.probes_per_sec = campus.config().probe_rate_per_sec;
    spec.host_discovery = host_discovery;
    bool done = false;
    engine.prober().start_scan(spec, [&](const active::ScanRecord& r) {
      done = true;
      out->scan_minutes =
          static_cast<double>((r.finished - r.started).usec) / 6e7;
      out->probes = r.outcomes.size();
      out->alive = r.hosts_alive;
    });
    while (!done && campus.simulator().step()) {
    }
    out->servers = core::addresses_found(engine.prober().table(),
                                         campus.simulator().now())
                       .size();
  };
  return job;
}

}  // namespace

int run() {
  std::printf("== Ablation: ping-based host discovery (one DTCP1 scan) ==\n\n");
  std::array<Result, 2> modes{};
  std::vector<core::CampaignJob> jobs;
  jobs.push_back(make_job(false, &modes[0]));
  jobs.push_back(make_job(true, &modes[1]));
  bench::run_campaigns(std::move(jobs), "two single-scan campaigns");
  const Result& plain = modes[0];
  const Result& discovery = modes[1];

  analysis::TextTable table({"mode", "scan duration", "port probes",
                             "hosts alive", "servers found"});
  char minutes[32];
  std::snprintf(minutes, sizeof minutes, "%.0f min", plain.scan_minutes);
  table.add_row({"full walk (paper)", minutes,
                 analysis::fmt_count(plain.probes), "-",
                 analysis::fmt_count(plain.servers)});
  std::snprintf(minutes, sizeof minutes, "%.0f min", discovery.scan_minutes);
  table.add_row({"ping pre-pass", minutes,
                 analysis::fmt_count(discovery.probes),
                 analysis::fmt_count(discovery.alive),
                 analysis::fmt_count(discovery.servers)});
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nhost discovery cut the scan by %.0f%% (%zu -> %zu probes) but\n"
      "missed %zu servers (%.1f%%): live hosts that drop ICMP echo. For\n"
      "vulnerability work that miss rate is why the paper's operators\n"
      "walked the whole space.\n",
      100.0 * (plain.scan_minutes - discovery.scan_minutes) /
          plain.scan_minutes,
      plain.probes, discovery.probes, plain.servers - discovery.servers,
      plain.servers == 0
          ? 0.0
          : 100.0 *
                static_cast<double>(plain.servers - discovery.servers) /
                static_cast<double>(plain.servers));
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
