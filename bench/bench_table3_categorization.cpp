// Table 3: categorization of IP addresses from the 12-hour preliminary
// survey (DTCP1-12h): one active scan plus 12 hours of passive
// monitoring.
#include <cstdio>

#include "analysis/table.h"
#include "bench_common.h"
#include "core/categorize.h"
#include "core/report.h"

namespace svcdisc {

int run() {
  // Keep the full 18-day scenario (sweep/traffic schedules identical to
  // DTCP1-18d) but simulate only the first 14 hours: the paper's
  // DTCP1-12h is literally the first 12 hours of DTCP1-18d plus its
  // first scan.
  core::EngineConfig engine_cfg;
  engine_cfg.scan_count = 1;
  auto campaign =
      bench::make_campaign(workload::CampusConfig::dtcp1_18d(), engine_cfg);
  bench::print_header("Table 3: address categorization (DTCP1-12h)",
                      campaign);

  bench::Stopwatch watch;
  campaign.c().start();
  campaign.c().simulator().run_until(util::kEpoch + util::hours(14));
  watch.report("DTCP1-12h campaign");

  const auto cutoff = util::kEpoch + util::hours(12);
  const auto passive =
      core::addresses_found(campaign.e().monitor().table(), cutoff);
  const auto active =
      core::addresses_found(campaign.e().prober().table(), cutoff);

  std::uint64_t counts[4] = {0, 0, 0, 0};
  for (const net::Ipv4 addr : campaign.c().scan_targets()) {
    const auto cat = core::short_category(passive.contains(addr),
                                          active.contains(addr));
    ++counts[static_cast<int>(cat)];
  }

  analysis::TextTable table({"Passive", "Active", "categorization", "count",
                             "paper"});
  table.add_row({"yes", "yes",
                 std::string(core::short_category_label(
                     core::ShortCategory::kActiveServer)),
                 analysis::fmt_count(counts[0]), "286"});
  table.add_row({"no", "yes",
                 std::string(core::short_category_label(
                     core::ShortCategory::kIdleServer)),
                 analysis::fmt_count(counts[1]), "1,421"});
  table.add_row({"yes", "no",
                 std::string(core::short_category_label(
                     core::ShortCategory::kFirewallOrBirth)),
                 analysis::fmt_count(counts[2]), "41"});
  table.add_row({"no", "no",
                 std::string(core::short_category_label(
                     core::ShortCategory::kNonServer)),
                 analysis::fmt_count(counts[3]), "14,553"});
  std::fputs(table.render().c_str(), stdout);
  std::printf("\n(total %s addresses; paper total 16,130 including the\n"
              "unprobeable wireless block)\n",
              analysis::fmt_count(campaign.c().scan_targets().size()).c_str());
  return 0;
}

}  // namespace svcdisc

int main() { return svcdisc::run(); }
